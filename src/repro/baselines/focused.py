"""FOCUSED: classic focused crawling adapted to target retrieval (Sec. 4.3).

Represents early focused crawlers [Chakrabarti et al. 1999; Diligenti
et al. 2000]: a logistic-regression link classifier estimates the
probability that a hyperlink leads to a target, and the frontier is a
priority queue ordered by that estimate.  Features follow standard
focused-crawler practice: the (approximate) depth of the source page, a
character 2-gram BoW of the URL and one of the link's anchor text.
The model is retrained periodically on pages already crawled, at no
extra HTTP cost.  Topic-oriented features are intentionally excluded.
"""

from __future__ import annotations

import heapq

from repro.baselines.base import FrontierCrawler
from repro.html.parse import ParsedPage
from repro.http.messages import Response
from repro.ml.features import HashedVector, hashed_bow, merge_vectors

_FEATURE_DIM = 1 << 14


class FocusedCrawler(FrontierCrawler):
    """Priority-frontier crawler driven by an online link classifier."""

    name = "FOCUSED"

    def __init__(self, retrain_every: int = 50, seed: int = 0) -> None:
        self.retrain_every = retrain_every
        self.seed = seed

    # -- features --------------------------------------------------------

    def _features(self, url: str, anchor: str, depth: int) -> HashedVector:
        parts = [
            hashed_bow(url, n=2, dim=_FEATURE_DIM, seed=11),
            hashed_bow(f"depth:{min(depth, 30)}", n=8, dim=_FEATURE_DIM, seed=13),
        ]
        if anchor:
            parts.append(hashed_bow(anchor, n=2, dim=_FEATURE_DIM, seed=12))
        return merge_vectors(parts)

    # -- frontier discipline -----------------------------------------------

    def _frontier_init(self) -> None:
        from repro.ml.linear import LogisticRegressionSGD

        self._heap: list[tuple[float, int, str]] = []
        self._counter = 0
        self._model = LogisticRegressionSGD(_FEATURE_DIM, seed=self.seed)
        self._pending_features: dict[str, HashedVector] = {}
        self._batch_x: list[HashedVector] = []
        self._batch_y: list[int] = []
        self._fetched = 0

    def _frontier_push(self, url: str, context: dict) -> None:
        features = self._features(
            url, context.get("anchor", ""), context.get("depth", 0)
        )
        self._pending_features[url] = features
        score = self._model.predict_proba(features) if self._model.n_updates else 0.5
        self._counter += 1
        heapq.heappush(self._heap, (-score, self._counter, url))

    def _frontier_pop(self) -> str:
        return heapq.heappop(self._heap)[2]

    def _frontier_empty(self) -> bool:
        return not self._heap

    # -- learning ------------------------------------------------------------

    def _on_page(self, url: str, response: Response, parsed: ParsedPage | None,
                 was_target: bool) -> None:
        features = self._pending_features.pop(url, None)
        if features is None:
            return
        self._batch_x.append(features)
        self._batch_y.append(1 if was_target else 0)
        self._fetched += 1
        if self._fetched % self.retrain_every == 0 and self._batch_x:
            self._model.partial_fit(self._batch_x, self._batch_y)
            self._batch_x.clear()
            self._batch_y.clear()
