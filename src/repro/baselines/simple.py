"""The simple baseline crawlers: BFS, DFS and RANDOM (Sec. 4.3).

* BFS keeps the frontier as a FIFO queue: all pages at link distance ℓ
  are crawled before any page at distance ℓ' > ℓ.
* DFS keeps it as a LIFO stack (rarely used in practice — robot traps —
  but a meaningful discipline on deep portal sites).
* RANDOM pops a uniformly random frontier URL.
"""

from __future__ import annotations

import random
from collections import deque

from repro.baselines.base import FrontierCrawler


class BFSCrawler(FrontierCrawler):
    """Breadth-first exhaustive crawler (FIFO frontier)."""

    name = "BFS"

    def _frontier_init(self) -> None:
        self._queue: deque[str] = deque()

    def _frontier_push(self, url: str, context: dict) -> None:
        self._queue.append(url)

    def _frontier_pop(self) -> str:
        return self._queue.popleft()

    def _frontier_empty(self) -> bool:
        return not self._queue

    def _frontier_state(self) -> dict | None:
        return {"queue": list(self._queue)}

    def _frontier_restore(self, state: dict) -> None:
        self._queue = deque(state["queue"])


class DFSCrawler(FrontierCrawler):
    """Depth-first crawler (LIFO frontier)."""

    name = "DFS"

    def _frontier_init(self) -> None:
        self._stack: list[str] = []

    def _frontier_push(self, url: str, context: dict) -> None:
        self._stack.append(url)

    def _frontier_pop(self) -> str:
        return self._stack.pop()

    def _frontier_empty(self) -> bool:
        return not self._stack

    def _frontier_state(self) -> dict | None:
        return {"stack": list(self._stack)}

    def _frontier_restore(self, state: dict) -> None:
        self._stack = list(state["stack"])


class RandomCrawler(FrontierCrawler):
    """Uniform-random frontier crawler."""

    name = "RANDOM"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _frontier_init(self) -> None:
        self._rng = random.Random(self.seed)
        self._items: list[str] = []

    def _frontier_push(self, url: str, context: dict) -> None:
        self._items.append(url)

    def _frontier_pop(self) -> str:
        index = self._rng.randrange(len(self._items))
        self._items[index], self._items[-1] = self._items[-1], self._items[index]
        return self._items.pop()

    def _frontier_empty(self) -> bool:
        return not self._items

    def _frontier_state(self) -> dict | None:
        from repro.checkpoint.codec import encode_rng_state

        return {"items": list(self._items), "rng": encode_rng_state(self._rng)}

    def _frontier_restore(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_rng_state

        self._items = list(state["items"])
        self._rng.setstate(decode_rng_state(state["rng"]))
