"""``python -m repro bench`` — profile the crawl hot paths.

Usage::

    python -m repro bench --seed 7 --out BENCH_7.json
    python -m repro bench --report                    # human table
    python -m repro bench --sections tagpath,frontier --repeats 5
    python -m repro bench --gate-against bench_results/BENCH_7.json

Scale defaults to the ``REPRO_BENCH_SCALE`` environment variable (CI
smoke runs set 0.2) and otherwise to 1.0.  The regression gate is only
enforced at full scale — at reduced scale a ``--gate-against`` request
reports the comparison but exits 0, because cross-scale pages/sec are
not comparable (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.bench.gate import DEFAULT_TOLERANCE, check_regression
from repro.bench.results import (
    bench_results_dir,
    build_document,
    load_document,
    save_document,
)
from repro.bench.sections import SECTION_NAMES, SECTIONS


def render_report(document: dict) -> str:
    """Human-readable table of one bench document."""
    lines = [
        "repro bench  (schema v%s, seed %s, scale %s, repeats %s)"
        % (
            document["schema_version"], document["seed"],
            document["scale"], document["repeats"],
        ),
        "",
        "%-10s %12s %12s %14s %10s" % (
            "section", "p50 ms", "p95 ms", "ops/sec", "vs ref",
        ),
    ]
    for section in document["sections"]:
        timing = section["timing"]
        speedup = section["speedup_vs_reference"]
        lines.append(
            "%-10s %12.2f %12.2f %14.1f %10s" % (
                section["name"],
                timing["p50_ms"],
                timing["p95_ms"],
                timing["ops_per_sec"],
                f"{speedup:.2f}x" if speedup is not None else "-",
            )
        )
    pages_per_sec = document.get("e2e_pages_per_sec")
    if pages_per_sec is not None:
        lines += ["", "end-to-end crawl: %.1f pages/sec" % pages_per_sec]
    environment = document["environment"]
    lines.append(
        "environment: %s %s / numpy %s / %s cpus" % (
            environment["implementation"], environment["python"],
            environment["numpy"], environment["cpu_count"],
        )
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the crawl hot paths and record a "
                    "schema-versioned BENCH_<n>.json.",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed (default 7)")
    parser.add_argument(
        "--scale", type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
        help="workload scale factor (default: $REPRO_BENCH_SCALE or 1.0)",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per section (default 3)")
    parser.add_argument(
        "--sections", default=",".join(SECTION_NAMES), metavar="NAMES",
        help="comma-separated subset of: %s" % ", ".join(SECTION_NAMES),
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="output path (default bench_results/BENCH_<seed>.json)",
    )
    parser.add_argument("--report", action="store_true",
                        help="print the human-readable table")
    parser.add_argument(
        "--gate-against", type=Path, default=None, metavar="BASELINE",
        help="fail (exit 1) if e2e pages/sec regressed vs this document",
    )
    parser.add_argument(
        "--gate-tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fractional drop tolerated by the gate (default %.2f)"
             % DEFAULT_TOLERANCE,
    )
    args = parser.parse_args(argv)

    requested = [name.strip() for name in args.sections.split(",") if name.strip()]
    unknown = [name for name in requested if name not in SECTIONS]
    if unknown:
        parser.error("unknown sections: %s" % ", ".join(unknown))
    # Run in registry order regardless of how --sections was spelled.
    selected = [name for name in SECTION_NAMES if name in requested]

    sections = []
    for name in selected:
        print(f"[bench] {name} ...", file=sys.stderr)
        sections.append(SECTIONS[name](args.seed, args.scale, args.repeats))
    document = build_document(args.seed, args.scale, args.repeats, sections)

    out = args.out
    if out is None:
        out = bench_results_dir() / f"BENCH_{args.seed}.json"
    save_document(document, out)
    print(f"[bench] wrote {out}", file=sys.stderr)

    if args.report:
        print(render_report(document))

    if args.gate_against is not None:
        baseline = load_document(args.gate_against)
        result = check_regression(document, baseline, args.gate_tolerance)
        if args.scale != 1.0:  # repro: noqa[COR002] exact CLI sentinel, not arithmetic
            print(
                "[bench] gate not enforced at scale %s (informational): %s"
                % (args.scale, result.message)
            )
        else:
            print(f"[bench] {result.message}")
            if not result.passed:
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
