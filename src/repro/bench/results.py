"""The ``BENCH_<n>.json`` document: schema, environment, output paths.

A benchmark result is a single JSON document.  Its schema is versioned
(``schema_version``) so trajectory tooling can detect incompatible
files; the field reference lives in docs/performance.md and is gated by
``tests/test_docs.py`` against :data:`SCHEMA_FIELDS`.

Everything in the document except the timing values is deterministic in
``(seed, scale, repeats)`` — :func:`strip_timings` removes exactly the
non-deterministic part, which is what the determinism gate in
``tests/test_bench.py`` compares across runs.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

import numpy as np

import repro
from repro.bench.sections import SectionResult

#: Bump when a field is added, removed or changes meaning.
SCHEMA_VERSION = 1

#: Every field name appearing in a BENCH_<n>.json document, top-level
#: and nested.  docs/performance.md must mention each one (doc gate).
SCHEMA_FIELDS: tuple[str, ...] = (
    "schema_version",
    "seed",
    "scale",
    "repeats",
    "environment",
    "sections",
    "e2e_pages_per_sec",
    "optimizations",
    # environment fingerprint
    "python",
    "implementation",
    "platform",
    "machine",
    "cpu_count",
    "numpy",
    "repro_version",
    # per-section
    "name",
    "unit",
    "workload",
    "timing",
    "variants",
    "speedup_vs_reference",
    # timing block
    "p50_ms",
    "p95_ms",
    "ops_per_sec",
    "seconds",
)

#: Keys whose values are wall-clock measurements (machine-dependent).
_TIMING_KEYS = frozenset(
    {"timing", "variants", "speedup_vs_reference", "e2e_pages_per_sec"}
)


def environment_fingerprint() -> dict[str, object]:
    """Where the numbers were taken — compare trajectories per-machine."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "repro_version": repro.__version__,
    }


def bench_results_dir() -> Path:
    """The repo-level ``bench_results/`` directory, created on demand.

    Anchored on this file's location, not the CWD, so benchmarks and the
    CLI write to the same place no matter where they are invoked from.
    """
    directory = Path(__file__).resolve().parents[3] / "bench_results"
    directory.mkdir(exist_ok=True)
    return directory


def build_document(
    seed: int,
    scale: float,
    repeats: int,
    sections: list[SectionResult],
) -> dict[str, object]:
    """Assemble the full BENCH_<n>.json document."""
    by_name = {section.name: section for section in sections}
    e2e = by_name.get("e2e")
    optimizations = {
        section.name: section.speedup_vs_reference
        for section in sections
        if section.speedup_vs_reference is not None
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "seed": seed,
        "scale": scale,
        "repeats": repeats,
        "environment": environment_fingerprint(),
        "sections": [section.to_dict() for section in sections],
        "e2e_pages_per_sec": (
            round(e2e.timing["ops_per_sec"], 2) if e2e is not None else None
        ),
        "optimizations": optimizations,
    }


def strip_timings(document: dict[str, object]) -> dict[str, object]:
    """The deterministic projection of a bench document.

    Drops every machine-dependent value (timings, speedups, derived
    throughput) and the environment fingerprint; two runs with the same
    ``(seed, scale, repeats)`` must agree exactly on what remains.
    """
    stripped: dict[str, object] = {}
    for key, value in document.items():
        if key in _TIMING_KEYS or key == "environment":
            continue
        if key == "sections":
            stripped[key] = [
                {k: v for k, v in section.items() if k not in _TIMING_KEYS}
                for section in value  # type: ignore[union-attr]
            ]
        elif key == "optimizations":
            # Speedup *values* are timings; which sections carry one is
            # deterministic.
            stripped[key] = sorted(value)  # type: ignore[arg-type]
        else:
            stripped[key] = value
    return stripped


def save_document(document: dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_document(path: Path) -> dict[str, object]:
    return json.loads(path.read_text())
