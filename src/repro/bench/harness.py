"""Timing machinery for the crawl-hot-path benchmarks.

One *section* measures one hot path.  A section provides a state
*factory* (fresh state per repeat, so repeats are independent and the
workload is identical every time) and a *runner* that executes the whole
workload against that state.  The harness times ``repeats`` executions
with ``time.perf_counter`` and reduces them to the timing fields of the
``BENCH_<n>.json`` schema (docs/performance.md):

* ``p50_ms`` / ``p95_ms`` — percentiles of the per-repeat wall time;
* ``ops_per_sec`` — workload operations divided by the *median* repeat
  (the median is robust against one-off scheduler noise);
* ``seconds`` — total measured time across all repeats.

Timings are the only non-deterministic values in a benchmark result;
everything else (operation counts, byte counts, vocabulary sizes) is a
pure function of ``(seed, scale)`` — the determinism gate in
``tests/test_bench.py`` holds the schema to that.
"""

from __future__ import annotations

import time
from typing import Callable


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_values:
        raise ValueError("percentile of empty list")
    rank = max(0, min(len(sorted_values) - 1,
                      round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def time_workload(
    make_state: Callable[[], object],
    run: Callable[[object], object],
    ops: int,
    repeats: int = 3,
) -> dict[str, float]:
    """Time ``repeats`` executions of ``run(make_state())``.

    State construction is *not* timed — each repeat measures the
    workload only.  Returns the timing dict of the bench schema.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples: list[float] = []
    for _ in range(repeats):
        state = make_state()
        started = time.perf_counter()
        run(state)
        samples.append(time.perf_counter() - started)
    samples.sort()
    median = percentile(samples, 0.50)
    return {
        "p50_ms": median * 1000.0,
        "p95_ms": percentile(samples, 0.95) * 1000.0,
        "ops_per_sec": ops / median if median > 0 else float("inf"),
        "seconds": sum(samples),
    }


def speedup(reference: dict[str, float], optimized: dict[str, float]) -> float:
    """How many times faster ``optimized`` is than ``reference`` (p50)."""
    if optimized["p50_ms"] <= 0:
        return float("inf")
    return reference["p50_ms"] / optimized["p50_ms"]
