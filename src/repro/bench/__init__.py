"""Crawl hot-path benchmarking (``python -m repro bench``).

Profiles the code the crawler spends its time in — tag-path n-gram
hashing, HNSW insert/search, HTML parse + link extraction, frontier
push/pop/sample — plus an end-to-end pages/sec crawl on a seeded paper
site, and records the numbers as a schema-versioned ``BENCH_<n>.json``
under ``bench_results/``.  A committed baseline plus a regression gate
turns the sequence of files into a performance trajectory CI can watch.

Methodology, the JSON schema reference and how to read the trajectory:
docs/performance.md.
"""

from __future__ import annotations

from repro.bench.gate import DEFAULT_TOLERANCE, GateResult, check_regression
from repro.bench.harness import percentile, speedup, time_workload
from repro.bench.results import (
    SCHEMA_FIELDS,
    SCHEMA_VERSION,
    bench_results_dir,
    build_document,
    environment_fingerprint,
    load_document,
    save_document,
    strip_timings,
)
from repro.bench.sections import SECTION_NAMES, SECTIONS, SectionResult

__all__ = [
    "DEFAULT_TOLERANCE",
    "GateResult",
    "SCHEMA_FIELDS",
    "SCHEMA_VERSION",
    "SECTIONS",
    "SECTION_NAMES",
    "SectionResult",
    "bench_results_dir",
    "build_document",
    "check_regression",
    "environment_fingerprint",
    "load_document",
    "percentile",
    "save_document",
    "speedup",
    "strip_timings",
    "time_workload",
]
