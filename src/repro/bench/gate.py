"""Regression gate: compare a fresh bench run against a committed baseline.

The gate watches one number — end-to-end pages/sec — because that is
the quantity the paper's scalability claims rest on and the one every
hot path feeds into.  Section-level timings are *reported* but not
gated: micro-section noise on shared CI runners would make a per-section
gate cry wolf.

The gate only means something when both documents were measured at the
same workload scale; :func:`check_regression` refuses cross-scale
comparisons rather than silently producing nonsense.  CI enforces it
only on full-scale runs (``REPRO_BENCH_SCALE`` unset or ``1.0``) — see
docs/performance.md.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fractional e2e pages/sec drop tolerated before the gate fails.
DEFAULT_TOLERANCE = 0.20


@dataclass(frozen=True)
class GateResult:
    """Outcome of one baseline comparison."""

    passed: bool
    message: str
    current_pages_per_sec: float | None = None
    baseline_pages_per_sec: float | None = None

    @property
    def ratio(self) -> float | None:
        if not self.current_pages_per_sec or not self.baseline_pages_per_sec:
            return None
        return self.current_pages_per_sec / self.baseline_pages_per_sec


def check_regression(
    current: dict[str, object],
    baseline: dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Fail if ``current`` e2e pages/sec dropped more than ``tolerance``
    (fraction) below ``baseline``.  Improvements always pass."""
    if current.get("schema_version") != baseline.get("schema_version"):
        return GateResult(
            passed=False,
            message=(
                "schema mismatch: current v%s vs baseline v%s — regenerate "
                "the baseline" % (
                    current.get("schema_version"),
                    baseline.get("schema_version"),
                )
            ),
        )
    if current.get("scale") != baseline.get("scale"):
        return GateResult(
            passed=False,
            message=(
                "scale mismatch: current %s vs baseline %s — pages/sec at "
                "different scales are not comparable" % (
                    current.get("scale"), baseline.get("scale"),
                )
            ),
        )
    current_pps = current.get("e2e_pages_per_sec")
    baseline_pps = baseline.get("e2e_pages_per_sec")
    if not isinstance(current_pps, (int, float)) or not isinstance(
        baseline_pps, (int, float)
    ):
        return GateResult(
            passed=False,
            message="e2e_pages_per_sec missing — run the e2e section",
        )
    floor = baseline_pps * (1.0 - tolerance)
    if current_pps < floor:
        return GateResult(
            passed=False,
            message=(
                "REGRESSION: e2e %.1f pages/sec is below the gate floor "
                "%.1f (baseline %.1f, tolerance %d%%)" % (
                    current_pps, floor, baseline_pps, tolerance * 100,
                )
            ),
            current_pages_per_sec=float(current_pps),
            baseline_pages_per_sec=float(baseline_pps),
        )
    return GateResult(
        passed=True,
        message=(
            "gate passed: e2e %.1f pages/sec vs baseline %.1f "
            "(floor %.1f)" % (current_pps, baseline_pps, floor)
        ),
        current_pages_per_sec=float(current_pps),
        baseline_pages_per_sec=float(baseline_pps),
    )
