"""The benchmark sections: one per crawl hot path.

Every section builds a *deterministic* workload from ``(seed, scale)``
(all randomness through :func:`repro.utils.rng.derive_rng`), measures it
with :func:`repro.bench.harness.time_workload`, and returns a
:class:`SectionResult` whose ``workload`` fields — counts, bytes, sizes
— are pure functions of the inputs.  ``scale`` multiplies workload
sizes; numbers taken at different scales are **not** comparable.

Where this PR optimized a hot path, the section also times a
*reference* variant — a faithful copy of the pre-optimization code —
so every ``BENCH_<n>.json`` carries its own before/after delta
(``speedup_vs_reference``) instead of pointing at an older file that
was measured on different hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.harness import speedup, time_workload
from repro.core.frontier import Frontier
from repro.core.hnsw import HnswIndex
from repro.core.tagpath import TagPathVectorizer
from repro.html.parse import parse_page
from repro.html.render import render_page
from repro.utils.rng import derive_rng, derive_seed

#: Registry order is report order; docs/performance.md documents each
#: (gated by tests/test_docs.py).
SECTION_NAMES: tuple[str, ...] = (
    "tagpath", "hnsw", "parse", "frontier", "campaign", "checkpoint", "e2e"
)

#: Site profile the parse and e2e sections crawl.
DEFAULT_SITE = "ju"


@dataclass(frozen=True)
class SectionResult:
    """One section's measurement, ready for the JSON schema."""

    name: str
    unit: str
    workload: dict[str, object]
    timing: dict[str, float]
    variants: dict[str, dict[str, float]] = field(default_factory=dict)
    speedup_vs_reference: float | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "unit": self.unit,
            "workload": dict(self.workload),
            "timing": dict(self.timing),
            "variants": {k: dict(v) for k, v in self.variants.items()},
            "speedup_vs_reference": self.speedup_vs_reference,
        }


# -- tagpath ---------------------------------------------------------------


class _ReferenceTagPathVectorizer(TagPathVectorizer):
    """The pre-PR-7 projection: per-path Python loop, no featurization
    memo.  Kept verbatim as the tagpath section's before/after baseline
    (it still produces bit-identical vectors to the optimized path)."""

    def project(self, tag_path: str) -> np.ndarray:
        counts: dict[int, float] = {}
        for ngram in self._ngrams(tag_path):
            position = self._position(ngram)
            counts[position] = counts.get(position, 0.0) + 1.0
        projected = np.zeros(self.dim, dtype=np.float64)
        for position, count in counts.items():
            projected[self._position_bucket[position]] += count
        occupied = self._bucket_sizes > 0
        projected[occupied] /= self._bucket_sizes[occupied]
        return projected


def _tagpath_workload(seed: int, scale: float) -> list[str]:
    """A crawl-shaped tag-path stream: a bounded set of layout templates
    sampled with repetition, plus a tail of unique-id noise paths (the
    'ed' site's idiosyncrasy) that keeps the vocabulary growing."""
    rng = derive_rng(seed, "bench", "tagpath")
    tags = ("div", "ul", "li", "span", "section", "article", "td", "tr")
    classes = ("content", "nav", "datasets", "items", "links", "footer")
    templates = []
    for index in range(60):
        depth = 3 + rng.randrange(5)
        segments = ["html", "body"]
        for _ in range(depth):
            tag = tags[rng.randrange(len(tags))]
            if rng.random() < 0.5:
                tag += "." + classes[rng.randrange(len(classes))]
            segments.append(tag)
        segments.append("a")
        templates.append(" ".join(segments))
    paths = []
    for index in range(max(1, int(20_000 * scale))):
        if rng.random() < 0.05:
            paths.append(templates[rng.randrange(len(templates))]
                         + f"#uid{index}")
        else:
            paths.append(templates[rng.randrange(len(templates))])
    return paths


def bench_tagpath(seed: int, scale: float, repeats: int) -> SectionResult:
    paths = _tagpath_workload(seed, scale)

    def run(vectorizer: TagPathVectorizer) -> None:
        project = vectorizer.project
        for path in paths:
            project(path)

    timing = time_workload(TagPathVectorizer, run, ops=len(paths),
                           repeats=repeats)
    reference = time_workload(_ReferenceTagPathVectorizer, run,
                              ops=len(paths), repeats=repeats)
    batched = time_workload(
        TagPathVectorizer,
        lambda vectorizer: vectorizer.project_many(paths),
        ops=len(paths),
        repeats=repeats,
    )
    probe = TagPathVectorizer()
    run(probe)
    return SectionResult(
        name="tagpath",
        unit="paths/sec",
        workload={
            "n_paths": len(paths),
            "n_distinct_paths": len(set(paths)),
            "vocabulary_size": probe.vocabulary_size,
            "dim": probe.dim,
        },
        timing=timing,
        variants={"reference": reference, "batched": batched},
        speedup_vs_reference=round(speedup(reference, timing), 3),
    )


# -- hnsw ------------------------------------------------------------------


def bench_hnsw(seed: int, scale: float, repeats: int) -> SectionResult:
    dim = 256
    n_inserts = max(8, int(1_500 * scale))
    n_searches = max(8, int(3_000 * scale))
    rng = np.random.default_rng(derive_seed(seed, "bench", "hnsw"))
    inserts = rng.random((n_inserts, dim))
    queries = rng.random((n_searches, dim))

    def make_state() -> HnswIndex:
        return HnswIndex(dim, seed=seed)

    def run(index: HnswIndex) -> None:
        for key in range(n_inserts):
            index.insert(key, inserts[key])
        search = index.search
        for query in queries:
            search(query, k=1)

    timing = time_workload(make_state, run, ops=n_inserts + n_searches,
                           repeats=repeats)
    probe = make_state()
    run(probe)
    hit_checksum = sum(
        probe.search(queries[i], k=1)[0][0] for i in range(0, n_searches, 97)
    )
    return SectionResult(
        name="hnsw",
        unit="index ops/sec",
        workload={
            "n_inserts": n_inserts,
            "n_searches": n_searches,
            "dim": dim,
            "M": probe.M,
            "hit_checksum": int(hit_checksum),
        },
        timing=timing,
    )


# -- parse -----------------------------------------------------------------


def bench_parse(seed: int, scale: float, repeats: int,
                site: str = DEFAULT_SITE) -> SectionResult:
    from repro.webgraph.sites import load_paper_site

    graph = load_paper_site(site, scale=max(0.05, min(1.0, 0.4 * scale)))
    pages = graph.html_pages()
    rng = derive_rng(seed, "bench", "parse")
    selected = [pages[rng.randrange(len(pages))]
                for _ in range(max(1, int(400 * scale)))]
    documents = [render_page(page) for page in selected]
    total_bytes = sum(len(doc.encode("utf-8")) for doc in documents)

    def run(_state: object) -> None:
        for document in documents:
            parse_page(document)

    timing = time_workload(lambda: None, run, ops=len(documents),
                           repeats=repeats)
    n_links = sum(len(parse_page(doc).links) for doc in documents)
    return SectionResult(
        name="parse",
        unit="pages/sec",
        workload={
            "site": site,
            "n_pages": len(documents),
            "total_bytes": total_bytes,
            "n_links": n_links,
        },
        timing=timing,
    )


# -- frontier --------------------------------------------------------------


class _ReferenceFrontier(Frontier):
    """The pre-PR-7 global draw and awake count: rebuilds the weighted
    action list on every ``pop_random`` (O(#actions)) instead of using
    the Fenwick tree.  Consumes the same RNG stream, so both variants
    execute the identical operation sequence."""

    def pop_random(self) -> str:
        if len(self) == 0:
            raise KeyError("frontier is empty")
        pools = [(a, p) for a, p in self._pools.items() if len(p) > 0]
        weights = [len(p) for _, p in pools]
        action_id = self._rng.choices(
            [a for a, _ in pools], weights=weights, k=1
        )[0]
        return self.pop_from_action(action_id)

    def n_awake(self) -> int:
        return sum(1 for p in self._pools.values() if len(p) > 0)


def _frontier_ops(seed: int, scale: float) -> list[tuple]:
    """A deterministic op script: URL adds spread over many actions,
    interleaved global draws (the measured O(log n) path) and discards."""
    rng = derive_rng(seed, "bench", "frontier")
    n_actions = max(4, int(400 * scale))
    ops: list[tuple] = []
    serial = 0
    for _ in range(max(16, int(30_000 * scale))):
        roll = rng.random()
        if roll < 0.55:
            ops.append(("add", f"https://bench.example/p{serial}",
                        rng.randrange(n_actions)))
            serial += 1
        elif roll < 0.85:
            ops.append(("pop_random",))
        elif roll < 0.95:
            ops.append(("pop_action", rng.randrange(n_actions)))
        else:
            ops.append(("discard", f"https://bench.example/p{rng.randrange(max(serial, 1))}"))
    return ops


def _run_frontier(frontier: Frontier, ops: list[tuple]) -> tuple[int, int]:
    popped = 0
    for op in ops:
        kind = op[0]
        try:
            if kind == "add":
                frontier.add(op[1], op[2])
            elif kind == "pop_random":
                frontier.pop_random()
                popped += 1
            elif kind == "pop_action":
                frontier.pop_from_action(op[1])
                popped += 1
            else:
                frontier.discard(op[1])
        except KeyError:
            continue  # empty pool/frontier: part of the workload shape
    return popped, len(frontier)


def bench_frontier(seed: int, scale: float, repeats: int) -> SectionResult:
    ops = _frontier_ops(seed, scale)

    timing = time_workload(
        lambda: Frontier(seed=seed), lambda f: _run_frontier(f, ops),
        ops=len(ops), repeats=repeats,
    )
    reference = time_workload(
        lambda: _ReferenceFrontier(seed=seed), lambda f: _run_frontier(f, ops),
        ops=len(ops), repeats=repeats,
    )
    popped, remaining = _run_frontier(Frontier(seed=seed), ops)
    return SectionResult(
        name="frontier",
        unit="frontier ops/sec",
        workload={
            "n_ops": len(ops),
            "n_popped": popped,
            "final_size": remaining,
        },
        timing=timing,
        variants={"reference": reference},
        speedup_vs_reference=round(speedup(reference, timing), 3),
    )


# -- campaign --------------------------------------------------------------


def bench_campaign(seed: int, scale: float, repeats: int) -> SectionResult:
    """The sharded campaign engine, end to end on the serial backend:
    partition, dispatch, crawl every shard, merge, digest.

    The workload block carries the report digest — the determinism gate
    then protects the engine's byte-identity contract for free.
    """
    from repro.campaign import CampaignSpec, run_campaign

    site_scale = max(0.05, min(1.0, 0.2 * scale))
    spec = CampaignSpec(
        sites=("be", "cl", "cn", "qa"), crawler="BFS", seed=seed,
        scale=site_scale, n_shards=4, n_workers=2,
    )
    probe = run_campaign(spec)

    def run(_state: object) -> None:
        run_campaign(spec)

    timing = time_workload(lambda: None, run, ops=probe.n_requests,
                           repeats=repeats)
    return SectionResult(
        name="campaign",
        unit="pages/sec",
        workload={
            "sites": ",".join(spec.sites),
            "site_scale": site_scale,
            "n_shards": probe.n_shards,
            "n_requests": probe.n_requests,
            "n_targets": probe.n_targets,
            "makespan_seconds": round(probe.makespan_seconds, 6),
            "digest": probe.digest,
        },
        timing=timing,
    )


# -- checkpoint ------------------------------------------------------------


def bench_checkpoint(seed: int, scale: float, repeats: int,
                     site: str = DEFAULT_SITE) -> SectionResult:
    """Snapshot/write/read round-trips of a real mid-crawl state.

    An SB crawl is driven to a deterministic interrupt step with an
    in-memory checkpointer (``store=None``), capturing the exact
    payload a durable run would persist; the measured loop then writes
    that payload through the atomic store and validates it back.  The
    workload block carries the payload digest and a round-trip
    identity bit, so the determinism gate also protects the codec's
    byte-identity contract.
    """
    import tempfile
    from pathlib import Path

    from repro.checkpoint import (
        CheckpointStore,
        CrawlCheckpointer,
        CrawlInterrupted,
        canonical_json,
        payload_digest,
    )
    from repro.core.crawler import SBConfig, sb_classifier
    from repro.http.environment import CrawlEnvironment
    from repro.webgraph.sites import load_paper_site

    site_scale = max(0.05, min(1.0, 0.4 * scale))
    interrupt_at = max(20, int(200 * scale))
    env = CrawlEnvironment(load_paper_site(site, scale=site_scale))
    capture = CrawlCheckpointer(store=None, interrupt_at=interrupt_at)
    try:
        sb_classifier(SBConfig(seed=seed)).crawl(env, checkpoint=capture)
    except CrawlInterrupted:
        pass
    payload = capture.last_payload
    assert payload is not None
    payload_bytes = len(canonical_json(payload).encode("utf-8"))
    n_roundtrips = max(4, int(30 * scale))

    with tempfile.TemporaryDirectory() as tmp:
        serial = iter(range(1_000_000))

        def make_store() -> CheckpointStore:
            return CheckpointStore(Path(tmp) / f"run{next(serial)}")

        def run(store: CheckpointStore) -> None:
            for step in range(n_roundtrips):
                store.write_checkpoint(payload, step=step)
                store.read_latest()
                store.prune_old(keep=2)

        timing = time_workload(make_store, run, ops=n_roundtrips,
                               repeats=repeats)
        probe = make_store()
        probe.write_checkpoint(payload, step=interrupt_at)
        roundtrip_identical = probe.read_latest().payload == payload

    return SectionResult(
        name="checkpoint",
        unit="checkpoints/sec",
        workload={
            "site": site,
            "site_scale": site_scale,
            "interrupt_step": interrupt_at,
            "n_roundtrips": n_roundtrips,
            "payload_bytes": payload_bytes,
            "payload_digest": payload_digest(payload),
            "roundtrip_identical": roundtrip_identical,
        },
        timing=timing,
    )


# -- e2e -------------------------------------------------------------------


def bench_e2e(seed: int, scale: float, repeats: int,
              site: str = DEFAULT_SITE) -> SectionResult:
    from repro.core.crawler import SBConfig, sb_classifier
    from repro.http.environment import CrawlEnvironment
    from repro.webgraph.sites import load_paper_site

    site_scale = max(0.05, min(1.0, 0.4 * scale))
    budget = max(50, int(1_000 * scale))
    results: list[object] = []

    def make_state() -> CrawlEnvironment:
        return CrawlEnvironment(load_paper_site(site, scale=site_scale))

    def run(env: CrawlEnvironment) -> None:
        crawler = sb_classifier(SBConfig(seed=seed))
        results.append(crawler.crawl(env, budget=budget))

    timing = time_workload(make_state, run, ops=budget, repeats=repeats)
    final = results[-1]
    # pages/sec over the *actual* request count (== budget unless the
    # site is exhausted first).
    timing["ops_per_sec"] = final.n_requests / (timing["p50_ms"] / 1000.0)
    return SectionResult(
        name="e2e",
        unit="pages/sec",
        workload={
            "site": site,
            "site_scale": site_scale,
            "budget": budget,
            "crawler": final.crawler,
            "n_requests": final.n_requests,
            "n_targets": final.n_targets,
        },
        timing=timing,
    )


#: name -> section runner; all take (seed, scale, repeats).
SECTIONS = {
    "tagpath": bench_tagpath,
    "hnsw": bench_hnsw,
    "parse": bench_parse,
    "frontier": bench_frontier,
    "campaign": bench_campaign,
    "checkpoint": bench_checkpoint,
    "e2e": bench_e2e,
}

__all__ = [
    "SECTION_NAMES",
    "SECTIONS",
    "SectionResult",
]
