"""HTML substrate: DOM construction, page rendering and parsing.

Generated pages are rendered to *real* HTML text and crawlers parse that
text back into links and tag paths — the same round trip a live crawler
performs, so tag-path extraction (the heart of the paper's method) is
exercised for real rather than read off graph internals.
"""

from repro.html.dom import DomElement, parse_segment, render_segment
from repro.html.parse import ParsedPage, extract_links, parse_page
from repro.html.render import render_page

__all__ = [
    "DomElement",
    "parse_segment",
    "render_segment",
    "ParsedPage",
    "extract_links",
    "parse_page",
    "render_page",
]
