"""HTML parsing: recover hyperlinks and their DOM tag paths.

This is the crawler-side inverse of :mod:`repro.html.render`, built on
the standard library's :class:`html.parser.HTMLParser`.  For every
``<a>``, ``<area>`` or ``<iframe>`` with a link attribute it emits the
root-to-element tag path (with ``#id`` / ``.class`` annotations, Sec.
2.2) plus the anchor text, and it accumulates a bounded sample of the
page text (used by the URL_CONT feature set and the TRES baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

from repro.html.dom import render_segment
from repro.webgraph.model import Form, Link

#: Elements that never contain children (no closing tag expected).
_VOID_ELEMENTS = frozenset(
    {"area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"}
)

#: Elements whose links we extract, with the attribute holding the URL.
_LINK_ELEMENTS = {"a": "href", "area": "href", "iframe": "src"}


@dataclass
class ParsedPage:
    """Result of parsing one HTML document."""

    links: list[Link] = field(default_factory=list)
    text: str = ""
    title: str = ""
    #: GET search forms found on the page (deep-web extension); their
    #: ``result_urls`` are always empty — a crawler must enumerate.
    forms: list[Form] = field(default_factory=list)


class _LinkExtractor(HTMLParser):
    """Stack-based tag-path tracker."""

    def __init__(self, text_limit: int = 4000) -> None:
        super().__init__(convert_charrefs=True)
        self._stack: list[str] = []
        #: bare tag of each stack segment (segment text up to the first
        #: ``#``/``.``), precomputed so end-tag matching needs no splits.
        self._bare_stack: list[str] = []
        self._links: list[Link] = []
        self._pending: list[tuple[str, str, list[str]]] = []  # url, path, texts
        self._text_parts: list[str] = []
        self._text_len = 0
        self._text_limit = text_limit
        self._in_title = False
        self._title_parts: list[str] = []
        self._forms: list[Form] = []
        self._form_action: str | None = None
        self._form_fields: list[tuple[str, list[str]]] = []
        self._select_name: str | None = None

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _segment(tag: str, attrs: list[tuple[str, str | None]]) -> str:
        elem_id = None
        classes: tuple[str, ...] = ()
        for key, value in attrs:
            if key == "id" and value:
                elem_id = value
            elif key == "class" and value:
                classes = tuple(value.split())
        return render_segment(tag, elem_id, classes)

    def _record_link(self, tag: str, attrs: list[tuple[str, str | None]],
                     segment: str, closed: bool) -> bool:
        url_attr = _LINK_ELEMENTS.get(tag)
        if url_attr is None:
            return False
        url = dict((k, v) for k, v in attrs).get(url_attr)
        if not url:
            return False
        path = " ".join(self._stack + [segment])
        if closed:
            self._links.append(Link(url=url, tag_path=path, anchor=""))
            return False
        self._pending.append((url, path, []))
        return True

    # -- HTMLParser hooks -------------------------------------------------

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        # Most elements carry no id/class, so skip segment assembly (and
        # the attribute-map dict, needed only by a few tags) when we can.
        segment = self._segment(tag, attrs) if attrs else tag
        if tag == "title":
            self._in_title = True
        elif tag == "form":
            attr_map = {k: v for k, v in attrs}
            self._form_action = attr_map.get("action") or ""
            self._form_fields = []
        elif tag == "select" and self._form_action is not None:
            attr_map = {k: v for k, v in attrs}
            self._select_name = attr_map.get("name") or f"f{len(self._form_fields)}"
            self._form_fields.append((self._select_name, []))
        elif tag == "option" and self._select_name is not None:
            value = {k: v for k, v in attrs}.get("value")
            if value and self._form_fields:
                self._form_fields[-1][1].append(value)
        self._record_link(tag, attrs, segment, closed=False)
        if tag not in _VOID_ELEMENTS:
            self._stack.append(segment)
            self._bare_stack.append(segment.split("#")[0].split(".")[0])

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        segment = self._segment(tag, attrs)
        self._record_link(tag, attrs, segment, closed=True)

    def handle_endtag(self, tag: str) -> None:
        if tag == "title":
            self._in_title = False
        elif tag == "select":
            self._select_name = None
        elif tag == "form" and self._form_action is not None:
            if self._form_action and self._form_fields:
                self._forms.append(
                    Form(
                        action=self._form_action,
                        fields=tuple(
                            (name, tuple(values))
                            for name, values in self._form_fields
                            if values
                        ),
                    )
                )
            self._form_action = None
            self._form_fields = []
        # Pop the stack back to the matching open tag (tolerant of
        # mis-nesting, like real crawlers must be).
        bare_stack = self._bare_stack
        for index in range(len(bare_stack) - 1, -1, -1):
            if bare_stack[index] == tag:
                del self._stack[index:]
                del bare_stack[index:]
                break
        if tag in _LINK_ELEMENTS and self._pending:
            url, path, texts = self._pending.pop()
            self._links.append(
                Link(url=url, tag_path=path, anchor=" ".join(texts).strip())
            )

    def handle_data(self, data: str) -> None:
        stripped = data.strip()
        if not stripped:
            return
        if self._in_title:
            self._title_parts.append(stripped)
        if self._pending:
            self._pending[-1][2].append(stripped)
        if self._text_len < self._text_limit:
            self._text_parts.append(stripped)
            self._text_len += len(stripped) + 1

    # -- results ------------------------------------------------------------

    def result(self) -> ParsedPage:
        # Flush anchors whose closing tag never came (broken HTML).
        while self._pending:
            url, path, texts = self._pending.pop()
            self._links.append(
                Link(url=url, tag_path=path, anchor=" ".join(texts).strip())
            )
        return ParsedPage(
            links=self._links,
            text=" ".join(self._text_parts)[: self._text_limit],
            title=" ".join(self._title_parts),
            forms=self._forms,
        )


def parse_page(html_text: str, text_limit: int = 4000) -> ParsedPage:
    """Parse an HTML document into links (with tag paths), text and title."""
    extractor = _LinkExtractor(text_limit=text_limit)
    extractor.feed(html_text)
    extractor.close()
    return extractor.result()


def extract_links(html_text: str) -> list[Link]:
    """Convenience wrapper returning only the links."""
    return parse_page(html_text).links
