"""Render a generated page into HTML text.

The renderer materialises the tag paths declared on the page's links
into a real DOM: link tag paths sharing a prefix share the corresponding
ancestor elements (exactly like a CMS layout), anchors are emitted with
``href`` and anchor text, and deterministic filler paragraphs pad the
body so the response size matches the page's sampled size.

Invariant (tested): parsing the rendered HTML recovers exactly the
page's declared ``(url, tag_path, anchor)`` link set.
"""

from __future__ import annotations

import hashlib
from urllib.parse import urlsplit

from repro.html.dom import DomElement, parse_segment
from repro.webgraph.model import Link, Page, same_site

_FILLER_WORDS = (
    "official figures for the reporting period are compiled by the national "
    "statistical service and published in accordance with the dissemination "
    "calendar the tables cover demographic economic and social indicators "
    "methodological notes accompany each release"
).split()


def _filler_sentence(seed_text: str, index: int) -> str:
    digest = hashlib.blake2b(
        f"{seed_text}:{index}".encode("utf-8"), digest_size=4
    ).digest()
    start = digest[0] % len(_FILLER_WORDS)
    length = 8 + digest[1] % 10
    words = [_FILLER_WORDS[(start + i) % len(_FILLER_WORDS)] for i in range(length)]
    return " ".join(words).capitalize() + "."


def _href_form(page_url: str, link_url: str) -> str:
    """How this href is written in the HTML: absolute, path-absolute or
    fragment-decorated.  Deterministic per (page, link) so rendering is
    stable; real pages mix all three forms, and crawlers must resolve
    them (``repro.webgraph.canonical``)."""
    digest = hashlib.blake2b(
        f"{page_url}|{link_url}".encode("utf-8"), digest_size=2
    ).digest()
    selector = digest[0] % 5
    if selector == 0 and same_site(page_url, link_url):
        # Path-absolute href, like most CMS output.
        parts = urlsplit(link_url)
        href = parts.path or "/"
        if parts.query:
            href += f"?{parts.query}"
        return href
    if selector == 1:
        return f"{link_url}#content"
    return link_url


def _build_dom(page_url: str, links: list[Link]) -> DomElement:
    """Merge link tag paths into a single DOM tree."""
    root = DomElement("html")
    for link in links:
        segments = link.tag_path.split(" ")
        if not segments or segments[0] != "html":
            raise ValueError(f"tag path must start at html: {link.tag_path!r}")
        node = root
        for segment in segments[1:-1]:
            child = node.find_child(segment)
            if child is None:
                tag, elem_id, classes = parse_segment(segment)
                child = DomElement(tag, elem_id, classes)
                node.append(child)
            node = child
        # The final segment is the anchor itself: one element per link.
        tag, elem_id, classes = parse_segment(segments[-1])
        anchor = DomElement(
            tag, elem_id, classes,
            attrs={"href": _href_form(page_url, link.url)},
        )
        if link.anchor:
            anchor.append(link.anchor)
        node.append(anchor)
    return root


def render_page(page: Page) -> str:
    """Render ``page`` to HTML whose length is ``page.size`` when possible."""
    root = _build_dom(page.url, page.links)
    body = root.find_child("body")
    if body is None:
        body = DomElement("body")
        root.append(body)
    # Head with a title derived from the URL.
    head = DomElement("head")
    title = DomElement("title")
    title.append(page.url.rsplit("/", 1)[-1] or page.section or "page")
    head.append(title)
    root.children.insert(0, head)
    # Search forms (deep-web extension).
    for index, form in enumerate(page.forms):
        form_element = DomElement(
            "form",
            elem_id=f"search-form-{index}" if index else "search-form",
            classes=("deep-search",),
            attrs={"action": form.action, "method": "get"},
        )
        for name, values in form.fields:
            select = DomElement("select", attrs={"name": name})
            for value in values:
                option = DomElement("option", attrs={"value": value})
                option.append(value)
                select.append(option)
            form_element.append(select)
        submit = DomElement("input", attrs={"type": "submit", "value": "Search"})
        form_element.append(submit)
        body.append(form_element)
    # Filler paragraphs inside the main content area.
    content = DomElement("div", classes=("page-text",))
    for index in range(3):
        paragraph = DomElement("p")
        paragraph.append(_filler_sentence(page.url, index))
        content.append(paragraph)
    body.append(content)

    html_text = "<!DOCTYPE html>\n" + root.to_html()
    remaining = page.size - len(html_text)
    if remaining > 25:
        # Pad with an HTML comment so len(body) == page.size exactly.
        pad = "x" * (remaining - 10)
        html_text += f"\n<!-- {pad} -->"
    return html_text
