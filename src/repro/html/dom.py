"""Minimal DOM tree with tag-path segments.

A *tag-path segment* is the canonical string form of one element on a
root-to-anchor path: ``tag`` + optional ``#id`` + zero or more
``.class`` suffixes, e.g. ``div#main.container``.  A full tag path is
the space-separated segment sequence, exactly as in the paper's
examples (``html body div#main ul.datasets li a``).
"""

from __future__ import annotations

import html as html_escape
from dataclasses import dataclass, field


@dataclass
class DomElement:
    """One element of the DOM tree used by the renderer."""

    tag: str
    elem_id: str | None = None
    classes: tuple[str, ...] = ()
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["DomElement | str"] = field(default_factory=list)

    @property
    def segment(self) -> str:
        return render_segment(self.tag, self.elem_id, self.classes)

    def append(self, child: "DomElement | str") -> None:
        self.children.append(child)

    def find_child(self, segment: str) -> "DomElement | None":
        """Return the first element child whose segment string matches."""
        for child in self.children:
            if isinstance(child, DomElement) and child.segment == segment:
                return child
        return None

    def to_html(self, indent: int = 0) -> str:
        """Serialise this subtree to HTML text."""
        pad = "  " * indent
        attrs = []
        if self.elem_id:
            attrs.append(f'id="{html_escape.escape(self.elem_id, quote=True)}"')
        if self.classes:
            joined = " ".join(self.classes)
            attrs.append(f'class="{html_escape.escape(joined, quote=True)}"')
        for key, value in self.attrs.items():
            attrs.append(f'{key}="{html_escape.escape(value, quote=True)}"')
        attr_text = (" " + " ".join(attrs)) if attrs else ""
        if not self.children:
            return f"{pad}<{self.tag}{attr_text}></{self.tag}>"
        parts = [f"{pad}<{self.tag}{attr_text}>"]
        for child in self.children:
            if isinstance(child, DomElement):
                parts.append(child.to_html(indent + 1))
            else:
                parts.append("  " * (indent + 1) + html_escape.escape(child))
        parts.append(f"{pad}</{self.tag}>")
        return "\n".join(parts)


def render_segment(tag: str, elem_id: str | None, classes: tuple[str, ...]) -> str:
    """Canonical segment string: ``tag#id.cls1.cls2``."""
    out = tag
    if elem_id:
        out += f"#{elem_id}"
    for cls in classes:
        out += f".{cls}"
    return out


def parse_segment(segment: str) -> tuple[str, str | None, tuple[str, ...]]:
    """Inverse of :func:`render_segment`.

    ``"div#main.container"`` → ``("div", "main", ("container",))``.
    The id, if present, always precedes the classes in canonical form.
    """
    tag = segment
    elem_id: str | None = None
    classes: list[str] = []
    if "." in tag:
        tag, *classes = tag.split(".")
    if "#" in tag:
        tag, elem_id = tag.split("#", 1)
    if not tag:
        raise ValueError(f"segment with empty tag: {segment!r}")
    return tag, elem_id, tuple(classes)
