"""Distribution sampling helpers used by the website generator.

The paper's site statistics (Table 1) report means and standard
deviations for target sizes (heavy-tailed, well modelled by a lognormal)
and target depths (roughly normal, clipped at 1).  These helpers sample
from such distributions with an explicit ``random.Random``.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Return ``n`` normalised Zipf weights ``1/rank^exponent``.

    Used to give website sections heavy-tailed popularity: a few hub
    sections receive most links, matching real site link distributions.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` (need not be normalised)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def bounded_lognormal(
    rng: random.Random,
    mean: float,
    std: float,
    low: float = 1.0,
    high: float | None = None,
) -> float:
    """Sample a lognormal with the given *arithmetic* mean and std.

    Solves for the underlying normal parameters (mu, sigma) from the
    desired arithmetic moments, then clips to ``[low, high]``.  Target
    file sizes in Table 1 have std far above the mean — a classic
    lognormal signature.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    variance_ratio = (std / mean) ** 2 if std > 0 else 0.0
    sigma2 = math.log(1.0 + variance_ratio)
    mu = math.log(mean) - sigma2 / 2.0
    value = rng.lognormvariate(mu, math.sqrt(sigma2))
    if high is not None:
        value = min(value, high)
    return max(value, low)


def clipped_normal_int(
    rng: random.Random,
    mean: float,
    std: float,
    low: int = 1,
    high: int | None = None,
) -> int:
    """Sample an integer from a normal clipped to ``[low, high]``."""
    value = int(round(rng.gauss(mean, std)))
    if high is not None:
        value = min(value, high)
    return max(value, low)
