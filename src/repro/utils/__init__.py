"""Shared utilities: deterministic RNG helpers and distribution sampling."""

from repro.utils.num import approx_zero
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.sampling import (
    bounded_lognormal,
    clipped_normal_int,
    weighted_choice,
    zipf_weights,
)

__all__ = [
    "approx_zero",
    "derive_rng",
    "derive_seed",
    "bounded_lognormal",
    "clipped_normal_int",
    "weighted_choice",
    "zipf_weights",
]
