"""Numeric helpers shared across layers.

``approx_zero`` exists so that float guards are written as explicit
tolerance checks rather than exact ``== 0.0`` comparisons, which the
``repro.lint`` COR002 rule flags: cosine norms and losses accumulate
rounding error, and an exact-zero test silently stops matching once a
value is merely *denormally* small.
"""

from __future__ import annotations

#: Default tolerance: far below any meaningful norm/loss in this code
#: base, far above double-precision rounding noise.
DEFAULT_EPS = 1e-12


def approx_zero(x: float, eps: float = DEFAULT_EPS) -> bool:
    """True when ``|x| <= eps`` — the float-safe form of ``x == 0.0``."""
    return abs(x) <= eps
