"""Deterministic random-number utilities.

Every stochastic component in the library takes an explicit seed so that
site generation and crawls are exactly reproducible.  Seeds for
sub-components are *derived* from a parent seed plus a string tag, which
keeps independent subsystems decorrelated without global state.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(seed: int, *tags: str) -> int:
    """Derive a child seed from ``seed`` and a sequence of string tags.

    Uses BLAKE2b so that nearby parent seeds produce unrelated child
    streams (``random.Random(seed + 1)`` would be correlated for some
    generators; hashing avoids the issue entirely).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(seed).encode("utf-8"))
    for tag in tags:
        digest.update(b"\x00")
        digest.update(tag.encode("utf-8"))
    return int.from_bytes(digest.digest(), "big")


def derive_rng(seed: int, *tags: str) -> random.Random:
    """Return a ``random.Random`` seeded from ``derive_seed(seed, *tags)``."""
    return random.Random(derive_seed(seed, *tags))
