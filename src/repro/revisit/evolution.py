"""Evolving-website model for incremental crawling.

Wraps a generated :class:`WebsiteGraph` and advances it through
simulated time: every HTML page has a Poisson *edit rate* (heavy-tailed:
most pages are near-static, a few churn constantly), and catalog pages
— those already linking targets — *publish new targets* at a
configurable rate, appended to their download slots.  This mirrors how
statistical offices operate: new releases appear in the same structural
location as old ones, which is exactly why reusing the crawler's learned
tag-path groups for revisits is promising.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.rng import derive_rng
from repro.webgraph.mime import GENERATOR_TARGET_MIMES
from repro.webgraph.model import Link, Page, PageKind, WebsiteGraph


@dataclass(frozen=True)
class PageChange:
    """One observable change event."""

    url: str
    time: float
    kind: str               # "edit" or "new-target"
    new_target_url: str | None = None


@dataclass
class _PageState:
    version: int = 0
    edit_rate: float = 0.01
    publish_rate: float = 0.0


class EvolvingSite:
    """A website graph plus a change process over simulated epochs."""

    def __init__(
        self,
        graph: WebsiteGraph,
        new_targets_per_epoch: float = 5.0,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.seed = seed
        self.now = 0.0
        self.changes: list[PageChange] = []
        self._rng = derive_rng(seed, "evolution", graph.name)
        self._states: dict[str, _PageState] = {}
        self._new_target_counter = 0
        self._catalog_urls: list[str] = []

        target_urls = graph.target_urls()
        catalogs = [
            p for p in graph.html_pages()
            if any(l.url in target_urls for l in p.links)
        ]
        self._catalog_urls = [p.url for p in catalogs]
        # Heavy-tailed edit rates: lognormal, median well below 1/epoch.
        for page in graph.html_pages():
            rng = derive_rng(seed, "rates", page.url)
            self._states[page.url] = _PageState(
                edit_rate=min(2.0, rng.lognormvariate(-2.5, 1.2)),
            )
        # Publication mass distributed over catalogs (zipf-like via
        # exponential weights) so a few catalogs publish most new data.
        if catalogs:
            weights = [1.0 / (rank + 1) for rank in range(len(catalogs))]
            total = sum(weights)
            for page, weight in zip(catalogs, weights):
                self._states[page.url].publish_rate = (
                    new_targets_per_epoch * weight / total
                )

    # -- observation API (what a revisiting crawler can see) -------------

    def version(self, url: str) -> int:
        state = self._states.get(url)
        return state.version if state is not None else 0

    def catalog_urls(self) -> list[str]:
        return list(self._catalog_urls)

    def new_targets_since(self, time: float) -> set[str]:
        return {
            c.new_target_url
            for c in self.changes
            if c.kind == "new-target" and c.time > time and c.new_target_url
        }

    # -- evolution -----------------------------------------------------------

    def _poisson(self, rate: float) -> int:
        """Knuth's algorithm; rates here are small."""
        if rate <= 0:
            return 0
        limit = math.exp(-rate)
        count = 0
        product = self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count

    def advance(self, dt: float = 1.0) -> list[PageChange]:
        """Advance simulated time by ``dt`` epochs; returns new changes."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.now += dt
        new_changes: list[PageChange] = []
        for url, state in self._states.items():
            if self._poisson(state.edit_rate * dt) > 0:
                state.version += 1
                new_changes.append(PageChange(url=url, time=self.now, kind="edit"))
            n_new = self._poisson(state.publish_rate * dt)
            for _ in range(n_new):
                new_changes.append(self._publish_target(url))
        self.changes.extend(new_changes)
        return new_changes

    def _publish_target(self, catalog_url: str) -> PageChange:
        catalog = self.graph.page(catalog_url)
        self._new_target_counter += 1
        rng = derive_rng(self.seed, "new-target", str(self._new_target_counter))
        mime, _ = GENERATOR_TARGET_MIMES[
            rng.randrange(len(GENERATOR_TARGET_MIMES))
        ]
        url = f"{catalog_url.rstrip('/')}/release-{self._new_target_counter}"
        page = Page(
            url=url,
            kind=PageKind.TARGET,
            mime_type=mime,
            status=200,
            size=rng.randint(10_000, 3_000_000),
            section=catalog.section,
        )
        self.graph.add_page(page)
        # New releases appear in the catalog's existing download slot:
        # reuse the tag path of a previous target link when available.
        download_paths = [l.tag_path for l in catalog.links]
        tag_path = download_paths[-1] if download_paths else "html body a"
        catalog.links.append(
            Link(url=url, tag_path=tag_path, anchor="New release")
        )
        state = self._states[catalog_url]
        state.version += 1
        return PageChange(
            url=catalog_url, time=self.now, kind="new-target",
            new_target_url=url,
        )
