"""Incremental revisit crawling (the paper's stated future work).

The paper's crawler is single-shot; its conclusion proposes extending it
with *incremental revisits* — re-crawling pages to pick up newly
published statistics datasets, "combining the knowledge acquired by our
RL-agent with existing re-crawling strategies" (Sec. 6).  This package
implements that extension over the same substrate:

* :class:`EvolvingSite` — a website that changes over simulated time:
  pages are edited at page-specific Poisson rates and catalog pages
  publish new targets;
* revisit policies: uniform round-robin, estimated-change-rate
  (Cho & Garcia-Molina style), Beta-Bernoulli Thompson Sampling
  (Schulam & Muslea 2023), and a tag-path-group policy that reuses the
  SB crawler's structural grouping;
* :func:`simulate_revisits` — an epoch-based harness measuring how many
  newly published targets each policy discovers per revisit budget.
"""

from repro.revisit.evolution import EvolvingSite, PageChange
from repro.revisit.policies import (
    ChangeRatePolicy,
    RevisitPolicy,
    TagPathGroupPolicy,
    ThompsonRevisitPolicy,
    UniformRevisitPolicy,
)
from repro.revisit.harness import RevisitReport, simulate_revisits

__all__ = [
    "EvolvingSite",
    "PageChange",
    "RevisitPolicy",
    "UniformRevisitPolicy",
    "ChangeRatePolicy",
    "ThompsonRevisitPolicy",
    "TagPathGroupPolicy",
    "RevisitReport",
    "simulate_revisits",
]
