"""Revisit scheduling policies.

A policy sees the inventory of known HTML pages, receives feedback after
every revisit ("did this page change since the last visit? did it expose
new targets?"), and each epoch picks which pages to revisit under a
request budget.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass
class PageObservation:
    """Bookkeeping per known page."""

    last_visit: float = 0.0
    n_visits: int = 0
    n_changed: int = 0
    n_new_targets: int = 0
    first_seen: float = 0.0


class RevisitPolicy(ABC):
    """Base class: inventory + observation bookkeeping."""

    name = "revisit-policy"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.pages: dict[str, PageObservation] = {}

    def register(self, url: str, now: float = 0.0, group: int | None = None) -> None:
        """Add a page to the inventory (group: its tag-path action id)."""
        if url not in self.pages:
            self.pages[url] = PageObservation(first_seen=now, last_visit=now)

    def observe(
        self, url: str, changed: bool, new_targets: int, now: float
    ) -> None:
        entry = self.pages.setdefault(url, PageObservation(first_seen=now))
        entry.n_visits += 1
        entry.last_visit = now
        if changed:
            entry.n_changed += 1
        entry.n_new_targets += new_targets

    @abstractmethod
    def schedule(self, budget: int, now: float) -> list[str]:
        """Pick up to ``budget`` pages to revisit at epoch ``now``."""


class UniformRevisitPolicy(RevisitPolicy):
    """Round-robin: always revisit the stalest pages first.

    The incremental-Heritrix baseline behaviour: fair but blind to how
    often pages actually change.
    """

    name = "UNIFORM"

    def schedule(self, budget: int, now: float) -> list[str]:
        stalest = sorted(self.pages, key=lambda u: self.pages[u].last_visit)
        return stalest[:budget]


class ChangeRatePolicy(RevisitPolicy):
    """Estimated-change-rate scheduling (Cho & Garcia-Molina lineage).

    Ranks pages by (estimated change probability per epoch) × staleness,
    with a Laplace-smoothed per-page change estimate.
    """

    name = "CHANGE-RATE"

    def schedule(self, budget: int, now: float) -> list[str]:
        def priority(url: str) -> float:
            entry = self.pages[url]
            rate = (entry.n_changed + 0.5) / (entry.n_visits + 1.0)
            staleness = now - entry.last_visit
            return rate * max(staleness, 0.0)

        ranked = sorted(self.pages, key=priority, reverse=True)
        return ranked[:budget]


class ThompsonRevisitPolicy(RevisitPolicy):
    """Beta-Bernoulli Thompson Sampling over per-visit change probability
    [Schulam & Muslea 2023]: sample p ~ Beta(1 + changes, 1 + unchanged)
    per page, weight by staleness, pick the top of the sample."""

    name = "THOMPSON"

    def schedule(self, budget: int, now: float) -> list[str]:
        def sample(url: str) -> float:
            entry = self.pages[url]
            alpha = 1.0 + entry.n_changed
            beta = 1.0 + entry.n_visits - entry.n_changed
            p = self._rng.betavariate(alpha, beta)
            return p * max(now - entry.last_visit, 0.0)

        ranked = sorted(self.pages, key=sample, reverse=True)
        return ranked[:budget]


class TagPathGroupPolicy(RevisitPolicy):
    """Structure-aware revisits: the paper's future-work idea.

    Pages are grouped by the tag-path action of their inbound link (the
    SB crawler's learned structure); new-target feedback accumulates
    *per group*, so a fresh release on one catalog immediately raises
    the revisit priority of every structurally similar page — even pages
    never yet observed to change.
    """

    name = "TAG-PATH"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._group_of: dict[str, int] = {}
        self._group_yield: dict[int, float] = {}
        self._group_visits: dict[int, int] = {}

    def register(self, url: str, now: float = 0.0, group: int | None = None) -> None:
        super().register(url, now)
        if group is not None:
            self._group_of[url] = group
            self._group_yield.setdefault(group, 0.0)
            self._group_visits.setdefault(group, 0)

    def observe(
        self, url: str, changed: bool, new_targets: int, now: float
    ) -> None:
        super().observe(url, changed, new_targets, now)
        group = self._group_of.get(url)
        if group is not None:
            self._group_visits[group] = self._group_visits.get(group, 0) + 1
            self._group_yield[group] = (
                self._group_yield.get(group, 0.0) + new_targets
            )

    def _group_score(self, group: int | None) -> float:
        if group is None:
            return 0.0
        visits = self._group_visits.get(group, 0)
        return (self._group_yield.get(group, 0.0) + 0.5) / (visits + 1.0)

    def schedule(self, budget: int, now: float) -> list[str]:
        def priority(url: str) -> float:
            entry = self.pages[url]
            own_rate = (entry.n_new_targets + 0.25) / (entry.n_visits + 1.0)
            group_rate = self._group_score(self._group_of.get(url))
            staleness = max(now - entry.last_visit, 0.0)
            return (own_rate + group_rate) * staleness

        ranked = sorted(self.pages, key=priority, reverse=True)
        return ranked[:budget]
