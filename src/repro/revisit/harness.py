"""Epoch-based revisit simulation.

Protocol: an initial full crawl builds the page inventory (with each
page's inbound tag-path group, reusing the SB machinery); then, for each
epoch, the site evolves (edits + newly published targets), the policy
picks ``budget`` pages to revisit, the harness GETs them, detects
changes via the page version, extracts any previously unseen target
links and fetches them immediately.  The headline metric is the recall
of newly published targets under the revisit budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import ActionSpace
from repro.core.tagpath import TagPathVectorizer
from repro.http.environment import CrawlEnvironment
from repro.revisit.evolution import EvolvingSite
from repro.revisit.policies import RevisitPolicy
from repro.webgraph.model import WebsiteGraph


@dataclass
class RevisitReport:
    """Outcome of one revisit simulation."""

    policy: str
    n_epochs: int
    budget_per_epoch: int
    published: int = 0
    discovered: int = 0
    revisit_requests: int = 0
    target_requests: int = 0
    per_epoch_recall: list[float] = field(default_factory=list)

    @property
    def recall(self) -> float:
        return self.discovered / self.published if self.published else 1.0

    def render(self) -> str:
        return (
            f"{self.policy:12} epochs={self.n_epochs} "
            f"budget={self.budget_per_epoch}/epoch "
            f"new-targets discovered {self.discovered}/{self.published} "
            f"(recall {100 * self.recall:.1f}%), "
            f"{self.revisit_requests} revisit + "
            f"{self.target_requests} target requests"
        )


def simulate_revisits(
    graph: WebsiteGraph,
    policy: RevisitPolicy,
    n_epochs: int = 20,
    budget_per_epoch: int = 30,
    new_targets_per_epoch: float = 5.0,
    seed: int = 0,
) -> RevisitReport:
    """Run the revisit protocol; the graph is mutated (pass a fresh one)."""
    site = EvolvingSite(
        graph, new_targets_per_epoch=new_targets_per_epoch, seed=seed
    )
    env = CrawlEnvironment(graph)
    client = env.new_client(f"revisit-{policy.name}")

    # Inventory from an initial full crawl: every HTML page, grouped by
    # the tag-path action of one inbound link (SB structure reuse).
    vectorizer = TagPathVectorizer(n=2, m=8)
    actions = ActionSpace(vectorizer, theta=0.75, seed=seed)
    inbound_group: dict[str, int] = {}
    for page in graph.html_pages():
        for link in page.links:
            if link.url not in inbound_group and link.url in graph:
                if graph.page(link.url).is_html:
                    inbound_group[link.url] = actions.assign(link.tag_path)
    known_targets = set(graph.target_urls())
    last_version: dict[str, int] = {}
    for page in graph.html_pages():
        policy.register(page.url, now=0.0, group=inbound_group.get(page.url))
        last_version[page.url] = site.version(page.url)

    report = RevisitReport(
        policy=policy.name,
        n_epochs=n_epochs,
        budget_per_epoch=budget_per_epoch,
    )

    for _ in range(n_epochs):
        changes = site.advance(1.0)
        published_now = [
            c.new_target_url for c in changes
            if c.kind == "new-target" and c.new_target_url
        ]
        report.published += len(published_now)

        for url in policy.schedule(budget_per_epoch, site.now):
            site_version = site.version(url)
            changed = site_version != last_version.get(url, 0)
            last_version[url] = site_version
            report.revisit_requests += 1
            new_found = 0
            if changed:
                # Re-fetch and re-parse the changed page for new links.
                env.server.invalidate(url)
                response = client.get(url)
                if response.ok and "html" in (response.mime_root() or ""):
                    env.invalidate(url)
                    for link in env.parse(response).links:
                        if (
                            link.url not in known_targets
                            and env.in_site(link.url)
                            and link.url in graph
                            and graph.page(link.url).is_target
                        ):
                            target_response = client.get(link.url)
                            report.target_requests += 1
                            if target_response.ok:
                                known_targets.add(link.url)
                                new_found += 1
            policy.observe(url, changed, new_found, site.now)
            report.discovered += new_found
        recall = report.discovered / report.published if report.published else 1.0
        report.per_epoch_recall.append(recall)

    return report
