"""Analysis utilities: crawl traces, evaluation metrics and complexity theory."""

from repro.analysis.trace import CrawlRecord, CrawlTrace
from repro.analysis.metrics import (
    requests_to_fraction,
    non_target_volume_fraction,
    targets_vs_requests_curve,
    volume_curve,
)

__all__ = [
    "CrawlRecord",
    "CrawlTrace",
    "requests_to_fraction",
    "non_target_volume_fraction",
    "targets_vs_requests_curve",
    "volume_curve",
]
