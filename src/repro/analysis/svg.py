"""Dependency-free SVG line charts for the paper's figures.

The benchmark harness renders Figure 4/5/15 data both as ASCII (for the
terminal) and as standalone SVG files (for reports).  Only the features
those figures need are implemented: multi-series line charts, linear or
log y-axis, axis ticks, a legend and an optional vertical marker (the
early-stopping cut of Figure 15).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_COLORS = (
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
    "#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
)

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 70
_MARGIN_BOTTOM = 50
_MARGIN_TOP = 40
_MARGIN_RIGHT = 160


@dataclass
class Series:
    name: str
    xs: list[float]
    ys: list[float]


@dataclass
class LineChart:
    """A multi-series line chart rendered to SVG text."""

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    log_y: bool = False
    series: list[Series] = field(default_factory=list)
    #: x position of an optional vertical marker line (Figure 15)
    marker_x: float | None = None

    def add_series(self, name: str, xs: list[float], ys: list[float]) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        self.series.append(Series(name=name, xs=list(xs), ys=list(ys)))

    # -- scaling -----------------------------------------------------------

    def _y_transform(self, y: float) -> float:
        if self.log_y:
            return math.log10(max(y, 1e-9))
        return y

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for s in self.series for x in s.xs] or [0.0, 1.0]
        ys = [self._y_transform(y) for s in self.series for y in s.ys] or [0.0, 1.0]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0
        return x_min, x_max, y_min, y_max

    # -- rendering -------------------------------------------------------------

    def to_svg(self) -> str:
        x_min, x_max, y_min, y_max = self._bounds()
        plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
        plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

        def px(x: float) -> float:
            return _MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w

        def py(y: float) -> float:
            ty = self._y_transform(y)
            return _MARGIN_TOP + plot_h - (ty - y_min) / (y_max - y_min) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
            f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">',
            f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
            f'<text x="{_WIDTH / 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-family="sans-serif">{_escape(self.title)}</text>',
        ]
        # Axes.
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" x2="{_MARGIN_LEFT}" '
            f'y2="{_MARGIN_TOP + plot_h}" stroke="black"/>'
        )
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_h}" '
            f'x2="{_MARGIN_LEFT + plot_w}" y2="{_MARGIN_TOP + plot_h}" '
            f'stroke="black"/>'
        )
        # Ticks (5 per axis).
        for i in range(6):
            fx = x_min + (x_max - x_min) * i / 5
            tick_x = px(fx)
            parts.append(
                f'<text x="{tick_x:.1f}" y="{_MARGIN_TOP + plot_h + 18}" '
                f'font-size="10" text-anchor="middle" '
                f'font-family="sans-serif">{_format_tick(fx)}</text>'
            )
            ty = y_min + (y_max - y_min) * i / 5
            label = 10**ty if self.log_y else ty
            tick_y = _MARGIN_TOP + plot_h - plot_h * i / 5
            parts.append(
                f'<text x="{_MARGIN_LEFT - 6}" y="{tick_y + 3:.1f}" '
                f'font-size="10" text-anchor="end" '
                f'font-family="sans-serif">{_format_tick(label)}</text>'
            )
        # Axis labels.
        if self.x_label:
            parts.append(
                f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{_HEIGHT - 10}" '
                f'font-size="12" text-anchor="middle" '
                f'font-family="sans-serif">{_escape(self.x_label)}</text>'
            )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{_MARGIN_TOP + plot_h / 2}" font-size="12" '
                f'text-anchor="middle" font-family="sans-serif" '
                f'transform="rotate(-90 16 {_MARGIN_TOP + plot_h / 2})">'
                f"{_escape(self.y_label)}</text>"
            )
        # Series.
        for index, series in enumerate(self.series):
            color = _COLORS[index % len(_COLORS)]
            points = " ".join(
                f"{px(x):.1f},{py(y):.1f}" for x, y in zip(series.xs, series.ys)
            )
            if points:
                parts.append(
                    f'<polyline points="{points}" fill="none" '
                    f'stroke="{color}" stroke-width="1.6"/>'
                )
            legend_y = _MARGIN_TOP + 14 * index
            legend_x = _WIDTH - _MARGIN_RIGHT + 12
            parts.append(
                f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 18}" '
                f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{legend_x + 24}" y="{legend_y + 4}" font-size="11" '
                f'font-family="sans-serif">{_escape(series.name)}</text>'
            )
        # Optional vertical marker (early-stopping cut).
        if self.marker_x is not None and x_min <= self.marker_x <= x_max:
            mx = px(self.marker_x)
            parts.append(
                f'<line x1="{mx:.1f}" y1="{_MARGIN_TOP}" x2="{mx:.1f}" '
                f'y2="{_MARGIN_TOP + plot_h}" stroke="black" '
                f'stroke-dasharray="5,4" stroke-width="1.4"/>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_svg(), encoding="utf-8")


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2g}"
