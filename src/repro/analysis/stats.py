"""Statistical comparison utilities for crawler evaluations.

The paper reports means ± STD over 15 runs; a careful reproduction also
wants uncertainty on the *comparisons*: paired bootstrap confidence
intervals on per-site metric differences, and the Wilcoxon signed-rank
test across sites (the standard paired non-parametric test for
crawler-A-vs-crawler-B questions).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing crawler A vs crawler B over paired sites."""

    mean_difference: float        # mean(A - B); negative = A better (lower)
    ci_low: float
    ci_high: float
    n_pairs: int
    wins_a: int                   # sites where A's metric is lower
    wins_b: int
    p_value: float | None = None  # Wilcoxon signed-rank (None if n too small)

    @property
    def significant(self) -> bool:
        """CI excludes zero (95 % level)."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def render(self, name_a: str = "A", name_b: str = "B") -> str:
        p_text = f", Wilcoxon p={self.p_value:.4f}" if self.p_value is not None else ""
        return (
            f"{name_a} - {name_b}: mean diff {self.mean_difference:+.2f} "
            f"[{self.ci_low:+.2f}, {self.ci_high:+.2f}] over {self.n_pairs} "
            f"sites; {name_a} wins {self.wins_a}, {name_b} wins "
            f"{self.wins_b}{p_text}"
        )


def bootstrap_mean_ci(
    values: list[float],
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float, float]:
    """(mean, ci_low, ci_high) via percentile bootstrap."""
    if not values:
        raise ValueError("need at least one value")
    rng = random.Random(seed)
    n = len(values)
    mean = sum(values) / n
    resampled = []
    for _ in range(n_resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        resampled.append(sum(sample) / n)
    resampled.sort()
    low_index = int((1.0 - confidence) / 2.0 * n_resamples)
    high_index = min(n_resamples - 1, n_resamples - 1 - low_index)
    return mean, resampled[low_index], resampled[high_index]


def compare_paired(
    metrics_a: list[float],
    metrics_b: list[float],
    seed: int = 0,
) -> PairedComparison:
    """Paired comparison of two crawlers' per-site metrics.

    Infinite metrics ("never reached 90 %") are handled by censoring:
    an ∞ loses against any finite value; pairs where both are ∞ tie and
    are dropped from the difference statistics.
    """
    if len(metrics_a) != len(metrics_b):
        raise ValueError("paired metrics must have the same length")
    wins_a = wins_b = 0
    differences: list[float] = []
    for a, b in zip(metrics_a, metrics_b):
        a_inf, b_inf = math.isinf(a), math.isinf(b)
        if a_inf and b_inf:
            continue
        if a_inf:
            wins_b += 1
            continue
        if b_inf:
            wins_a += 1
            continue
        if a < b:
            wins_a += 1
        elif b < a:
            wins_b += 1
        differences.append(a - b)
    if not differences:
        return PairedComparison(
            mean_difference=0.0, ci_low=0.0, ci_high=0.0,
            n_pairs=0, wins_a=wins_a, wins_b=wins_b,
        )
    mean, low, high = bootstrap_mean_ci(differences, seed=seed)
    p_value = _wilcoxon_p(differences)
    return PairedComparison(
        mean_difference=mean,
        ci_low=low,
        ci_high=high,
        n_pairs=len(differences),
        wins_a=wins_a,
        wins_b=wins_b,
        p_value=p_value,
    )


def _wilcoxon_p(differences: list[float]) -> float | None:
    """Two-sided Wilcoxon signed-rank p-value via scipy when applicable."""
    # Wilcoxon drops exactly-tied pairs; approximate zeros must stay.
    nonzero = [d for d in differences if d != 0.0]  # repro: noqa[COR002]
    if len(nonzero) < 6:
        return None
    try:
        from scipy import stats

        result = stats.wilcoxon(nonzero, alternative="two-sided")
        return float(result.pvalue)
    except ImportError:  # pragma: no cover - scipy is a test-env dependency
        return None
