"""Graph-crawling complexity (Sec. 2.1 / Appendix A of the paper).

Proposition 4: deciding whether a website graph admits a crawl (an
r-rooted subtree) covering all targets with total cost ≤ B is
NP-complete, by reduction from Set Cover.  This module makes the proof
*executable*:

* :func:`reduce_set_cover_to_crawl` builds the depth-2 website graph
  G_sc of the proof (root → set vertices → element vertices);
* :func:`set_cover_exact` / :func:`set_cover_greedy` solve Set Cover;
* :func:`min_crawl_cost` exactly solves the graph crawling problem on
  small graphs by enumerating vertex subsets;
* the equivalence of the proof — a cover of size ≤ B exists iff a crawl
  of cost ≤ |U| + B + 1 exists — is property-tested in the test suite.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SetCoverInstance:
    """Universe {0..n_elements-1} and a collection of subsets."""

    n_elements: int
    subsets: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        covered = set().union(*self.subsets) if self.subsets else set()
        if covered != set(range(self.n_elements)):
            raise ValueError("subsets must cover the universe")


@dataclass(frozen=True)
class CrawlInstance:
    """A rooted directed graph with unit node costs and a target set."""

    n_nodes: int
    root: int
    edges: tuple[tuple[int, int], ...]
    targets: frozenset[int]

    def successors(self, node: int) -> list[int]:
        return [v for u, v in self.edges if u == node]


def set_cover_greedy(instance: SetCoverInstance) -> list[int]:
    """Classic ln(n)-approximation: repeatedly take the set covering the
    most uncovered elements.  Returns chosen subset indices."""
    uncovered = set(range(instance.n_elements))
    chosen: list[int] = []
    while uncovered:
        best_index = max(
            range(len(instance.subsets)),
            key=lambda i: len(instance.subsets[i] & uncovered),
        )
        if not instance.subsets[best_index] & uncovered:
            raise ValueError("subsets cannot cover the universe")
        chosen.append(best_index)
        uncovered -= instance.subsets[best_index]
    return chosen


def set_cover_exact(instance: SetCoverInstance) -> list[int]:
    """Smallest cover by exhaustive search over subset combinations.

    Exponential — only for the small instances used to validate the
    reduction.
    """
    indices = range(len(instance.subsets))
    universe = set(range(instance.n_elements))
    for size in range(0, len(instance.subsets) + 1):
        for combo in itertools.combinations(indices, size):
            covered = set()
            for index in combo:
                covered |= instance.subsets[index]
            if covered == universe:
                return list(combo)
    raise ValueError("subsets cannot cover the universe")


def reduce_set_cover_to_crawl(instance: SetCoverInstance) -> CrawlInstance:
    """The proof's polynomial reduction: build G_sc (Fig. 6).

    Node layout: 0 is the root r; nodes 1..n are the set vertices
    s_1..s_n; nodes n+1 .. n+m are the element vertices u_1..u_m (the
    targets V*).  Edges: r → every s_i, and s_i → u for every u ∈ s_i.
    """
    n = len(instance.subsets)
    m = instance.n_elements
    edges: list[tuple[int, int]] = []
    for i in range(n):
        edges.append((0, 1 + i))
        for element in sorted(instance.subsets[i]):
            edges.append((1 + i, 1 + n + element))
    targets = frozenset(1 + n + e for e in range(m))
    return CrawlInstance(
        n_nodes=1 + n + m, root=0, edges=tuple(edges), targets=targets
    )


def crawl_budget_for_cover_budget(instance: SetCoverInstance, B: int) -> int:
    """The proof's budget transform: cover ≤ B ⟺ crawl cost ≤ |U| + B + 1."""
    return instance.n_elements + B + 1


def _is_valid_crawl(instance: CrawlInstance, included: frozenset[int]) -> bool:
    """Is there an r-rooted tree over exactly ``included`` covering it?

    Equivalent to: root ∈ included and every included node reachable from
    the root inside ``included`` (any spanning in-tree of the reachable
    subgraph is a crawl).
    """
    if instance.root not in included:
        return False
    frontier = [instance.root]
    reached = {instance.root}
    adjacency: dict[int, list[int]] = {}
    for u, v in instance.edges:
        adjacency.setdefault(u, []).append(v)
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, []):
            if nxt in included and nxt not in reached:
                reached.add(nxt)
                frontier.append(nxt)
    return reached == set(included)


def min_crawl_cost(instance: CrawlInstance) -> int:
    """Exact minimum crawl cost (unit ω) covering all targets.

    Exhaustive over subsets of optional nodes — exponential; intended
    for instances with ≤ ~20 optional nodes (Prop. 4 validation).
    """
    mandatory = set(instance.targets) | {instance.root}
    optional = sorted(set(range(instance.n_nodes)) - mandatory)
    if len(optional) > 22:
        raise ValueError("instance too large for exact enumeration")
    best = math.inf
    for size in range(0, len(optional) + 1):
        if size + len(mandatory) >= best:
            break
        for combo in itertools.combinations(optional, size):
            included = frozenset(mandatory) | frozenset(combo)
            if _is_valid_crawl(instance, included):
                best = min(best, len(included))
                break  # no smaller crawl at this size
    if best is math.inf:
        raise ValueError("no crawl covers all targets")
    return int(best)


def crawl_exists_within_budget(instance: CrawlInstance, budget: int) -> bool:
    """Decision variant of the graph crawling problem (Prop. 4)."""
    try:
        return min_crawl_cost(instance) <= budget
    except ValueError:
        return False
