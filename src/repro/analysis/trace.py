"""Crawl traces: the per-request event log every crawler produces.

All the paper's evaluation metrics (Tables 2–3, the Figure 4/7 curves)
are pure functions of this log, so crawlers stay metric-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class CrawlRecord:
    """One HTTP request issued during a crawl."""

    method: str          # "GET" or "HEAD"
    url: str
    status: int
    size: int            # bytes received
    is_target: bool      # the response was a (newly retrieved) target file

    @property
    def is_error(self) -> bool:
        return self.status >= 400


@dataclass
class CrawlTrace:
    """Ordered sequence of requests plus end-of-crawl metadata."""

    crawler: str = ""
    site: str = ""
    records: list[CrawlRecord] = field(default_factory=list)
    #: set by early stopping when it fired (index into records)
    stopped_early_at: int | None = None

    def append(self, record: CrawlRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CrawlRecord]:
        return iter(self.records)

    # -- aggregates -----------------------------------------------------

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def n_targets(self) -> int:
        return sum(1 for r in self.records if r.is_target)

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    @property
    def target_bytes(self) -> int:
        return sum(r.size for r in self.records if r.is_target)

    @property
    def non_target_bytes(self) -> int:
        return sum(r.size for r in self.records if not r.is_target)

    def target_urls(self) -> set[str]:
        return {r.url for r in self.records if r.is_target}

    def truncated(self, n_requests: int) -> "CrawlTrace":
        """First ``n_requests`` requests (the paper compares crawlers on
        the smallest crawl size achieved, Sec. 4.4)."""
        clone = CrawlTrace(crawler=self.crawler, site=self.site)
        clone.records = self.records[:n_requests]
        return clone
