"""Crawl-trace persistence (JSON Lines).

The artifact kit stores crawl traces so analyses can be re-run without
re-crawling; this module serialises a :class:`CrawlTrace` to a JSONL
file (one request per line, plus a header line with metadata) and reads
it back losslessly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.trace import CrawlRecord, CrawlTrace

_FORMAT_VERSION = 1


def save_trace(trace: CrawlTrace, path: str | Path) -> None:
    """Write a trace as JSONL: header line, then one line per request."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": _FORMAT_VERSION,
            "crawler": trace.crawler,
            "site": trace.site,
            "n_records": len(trace.records),
            "stopped_early_at": trace.stopped_early_at,
        }
        handle.write(json.dumps(header) + "\n")
        for record in trace.records:
            handle.write(
                json.dumps(
                    {
                        "m": record.method,
                        "u": record.url,
                        "s": record.status,
                        "b": record.size,
                        "t": int(record.is_target),
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )


def load_trace(path: str | Path) -> CrawlTrace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"empty trace file: {path}")
        header = json.loads(header_line)
        if header.get("format") != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format: {header.get('format')}")
        trace = CrawlTrace(
            crawler=header.get("crawler", ""),
            site=header.get("site", ""),
        )
        trace.stopped_early_at = header.get("stopped_early_at")
        for line in handle:
            if not line.strip():
                continue
            row = json.loads(line)
            trace.append(
                CrawlRecord(
                    method=row["m"],
                    url=row["u"],
                    status=row["s"],
                    size=row["b"],
                    is_target=bool(row["t"]),
                )
            )
        if len(trace.records) != header.get("n_records", len(trace.records)):
            raise ValueError(
                f"truncated trace: expected {header['n_records']} records, "
                f"got {len(trace.records)}"
            )
    return trace
