"""Evaluation metrics computed from crawl traces.

Reproduces the paper's headline metrics:

* **Table 2**: percentage of requests (GET + HEAD, relative to the
  site's number of available pages) a crawler performs before having
  retrieved 90 % of the targets; ∞ if it never gets there.
* **Table 3**: fraction of the site's non-target volume retrieved
  before reaching 90 % of the total target volume.
* **Figures 4/7**: the targets-vs-requests and volume-vs-volume curves.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.trace import CrawlTrace
from repro.webgraph.model import PageKind, WebsiteGraph

INFINITY = math.inf


def requests_to_fraction(
    trace: CrawlTrace,
    total_targets: int,
    n_available: int,
    fraction: float = 0.9,
) -> float:
    """Table 2 metric: % of requests to retrieve ``fraction`` of targets.

    The denominator is the site's number of available pages, so 100 means
    "as many requests as there are pages"; HEAD requests count too.
    Returns ``math.inf`` when the trace never reaches the threshold.
    """
    if total_targets <= 0 or n_available <= 0:
        return INFINITY
    needed = math.ceil(fraction * total_targets)
    found = 0
    for index, record in enumerate(trace.records):
        if record.is_target:
            found += 1
            if found >= needed:
                return 100.0 * (index + 1) / n_available
    return INFINITY


def non_target_volume_fraction(
    trace: CrawlTrace,
    total_target_bytes: int,
    total_non_target_bytes: int,
    fraction: float = 0.9,
) -> float:
    """Table 3 metric: % of the site's non-target volume downloaded
    before the crawler accumulated ``fraction`` of the total target
    volume.  ``math.inf`` when the threshold is never reached."""
    if total_target_bytes <= 0 or total_non_target_bytes <= 0:
        return INFINITY
    needed = fraction * total_target_bytes
    target_bytes = 0
    non_target_bytes = 0
    for record in trace.records:
        if record.is_target:
            target_bytes += record.size
            if target_bytes >= needed:
                return 100.0 * non_target_bytes / total_non_target_bytes
        else:
            non_target_bytes += record.size
    return INFINITY


def site_non_target_bytes(graph: WebsiteGraph) -> int:
    """Total volume of the site's available non-target resources."""
    return sum(
        p.size
        for p in graph.available_pages()
        if p.kind in (PageKind.HTML, PageKind.OTHER)
    )


def targets_vs_requests_curve(trace: CrawlTrace) -> tuple[np.ndarray, np.ndarray]:
    """Left-hand Figure 4 curves: cumulative targets vs requests issued."""
    n = len(trace.records)
    requests = np.arange(1, n + 1, dtype=np.int64)
    hits = np.fromiter(
        (1 if r.is_target else 0 for r in trace.records), dtype=np.int64, count=n
    )
    return requests, np.cumsum(hits)


def volume_curve(trace: CrawlTrace) -> tuple[np.ndarray, np.ndarray]:
    """Right-hand Figure 4 curves: target volume vs non-target volume.

    Returns (cumulative non-target bytes, cumulative target bytes) per
    request, so plotting y against x reproduces the paper's panels.
    """
    n = len(trace.records)
    target = np.zeros(n, dtype=np.int64)
    non_target = np.zeros(n, dtype=np.int64)
    for i, record in enumerate(trace.records):
        if record.is_target:
            target[i] = record.size
        else:
            non_target[i] = record.size
    return np.cumsum(non_target), np.cumsum(target)


def auc_targets_per_request(trace: CrawlTrace, total_targets: int) -> float:
    """Normalised area under the targets-vs-requests curve in [0, 1].

    1.0 means all targets were retrieved immediately (OMNISCIENT-like);
    0.0 means none were found.  A convenient scalar for regression tests
    and ablation comparisons.
    """
    if total_targets <= 0 or len(trace.records) == 0:
        return 0.0
    _, cumulative = targets_vs_requests_curve(trace)
    return float(cumulative.sum()) / (len(trace.records) * total_targets)
