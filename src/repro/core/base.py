"""Crawler interface shared by SB-CLASSIFIER and all baselines.

A crawler consumes a :class:`~repro.http.environment.CrawlEnvironment`
and a budget (in requests or bytes, Sec. 2.2) and produces a
:class:`CrawlResult` — the request trace plus the sets of visited pages
and retrieved targets.  All evaluation metrics are computed from the
trace, never from crawler internals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.trace import CrawlTrace
from repro.http.client import HttpClient
from repro.http.environment import CrawlEnvironment


@dataclass
class CrawlResult:
    """Outcome of one crawler run on one website."""

    crawler: str
    site: str
    trace: CrawlTrace
    visited: set[str] = field(default_factory=set)
    targets: set[str] = field(default_factory=set)
    stopped_early: bool = False
    #: URLs permanently given up on: permanent HTTP errors (404/410/…)
    #: and transient failures that exhausted their retries and requeues
    #: (docs/architecture.md, "Fault model").  Order = abandonment order.
    dead_letters: list[str] = field(default_factory=list)
    #: crawler-specific extras (bandit stats, classifier confusion, …)
    info: dict[str, Any] = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return self.trace.n_requests

    @property
    def n_targets(self) -> int:
        return len(self.targets)

    @property
    def n_dead_letters(self) -> int:
        return len(self.dead_letters)


class Crawler(ABC):
    """Abstract crawler: subclasses implement one crawl strategy."""

    #: display name used in result tables (paper's crawler names)
    name: str = "crawler"

    @abstractmethod
    def crawl(
        self,
        env: CrawlEnvironment,
        budget: float | None = None,
        cost_model: str = "requests",
    ) -> CrawlResult:
        """Run the crawl until the frontier is empty or the budget is spent."""

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def budget_exhausted(
        client: HttpClient, budget: float | None, cost_model: str
    ) -> bool:
        if budget is None:
            return False
        return client.budget_spent(cost_model) >= budget
