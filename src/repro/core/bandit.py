"""Sleeping-bandit action selection (Sec. 3.2).

Implements the AUER score the crawler maximises at every step:

    s(a) = 1_a(t) · ( R̄_a + α · sqrt( log(t) / (N_t(a) + ε) ) )

where 1_a(t) = 1 iff action a still has unvisited links (it is *awake*),
R̄_a is the running mean reward of a, N_t(a) counts how often a was
selected, α weighs exploration against exploitation (2√2 by default, the
UCB/AUER-optimal constant under standard assumptions) and ε > 0 guards
the division for never-selected actions.

A plain (non-sleeping) UCB variant is provided for ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.utils.rng import derive_rng

#: The paper's default exploration coefficient.
DEFAULT_ALPHA = 2.0 * math.sqrt(2.0)


@dataclass
class ArmState:
    """Statistics of one bandit arm (action)."""

    n_selected: int = 0
    mean_reward: float = 0.0
    total_reward: float = 0.0


@dataclass
class SleepingBandit:
    """AUER scoring and incremental reward bookkeeping."""

    alpha: float = DEFAULT_ALPHA
    epsilon: float = 1e-6
    arms: dict[int, ArmState] = field(default_factory=dict)
    #: instrumentation (repro.obs): score of the most recent selection —
    #: lets the crawl loop report the winning score without recomputing it
    last_score: float = 0.0
    #: instrumentation (repro.obs): total pulls across all arms
    total_selections: int = 0

    def ensure_arm(self, action_id: int) -> None:
        if action_id not in self.arms:
            self.arms[action_id] = ArmState()

    def score(self, action_id: int, t: int, awake: bool = True) -> float:
        """AUER score of one action at step t (0 when sleeping)."""
        if not awake:
            return 0.0
        arm = self.arms[action_id]
        log_t = math.log(t) if t > 1 else 0.0
        exploration = self.alpha * math.sqrt(log_t / (arm.n_selected + self.epsilon))
        return arm.mean_reward + exploration

    def select(self, awake_actions: list[int], t: int) -> int:
        """Argmax of the AUER score over the awake actions."""
        if not awake_actions:
            raise ValueError("no awake action to select")
        best_action = awake_actions[0]
        best_score = -math.inf
        for action_id in awake_actions:
            self.ensure_arm(action_id)
            score = self.score(action_id, t)
            if score > best_score:
                best_score = score
                best_action = action_id
        self.last_score = best_score
        return best_action

    def record_selection(self, action_id: int) -> None:
        self.ensure_arm(action_id)
        self.arms[action_id].n_selected += 1
        self.total_selections += 1

    def record_reward(self, action_id: int, reward: float) -> None:
        """Incremental mean update (final line of Algorithm 4)."""
        self.ensure_arm(action_id)
        arm = self.arms[action_id]
        if arm.n_selected == 0:
            # A reward observed for an arm never chosen by the bandit
            # (e.g. the root page): seed the mean directly.
            arm.n_selected = 1
        arm.total_reward += reward
        arm.mean_reward += (reward - arm.mean_reward) / arm.n_selected

    # -- analyses (Sec. 4.7) --------------------------------------------

    def mean_rewards(self) -> dict[int, float]:
        return {a: s.mean_reward for a, s in self.arms.items()}

    def nonzero_reward_stats(self) -> tuple[float, float]:
        """Mean and STD over arms with non-zero mean reward (Table 6)."""
        values = [s.mean_reward for s in self.arms.values() if s.mean_reward > 0.0]
        if not values:
            return 0.0, 0.0
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, math.sqrt(variance)

    def top_mean_rewards(self, k: int = 10) -> list[float]:
        """The k highest per-action mean rewards (Figure 5)."""
        values = sorted(
            (s.mean_reward for s in self.arms.values()), reverse=True
        )
        return values[:k]

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """Arms as a list of tuples in insertion order: the analyses
        fold ``arms.values()`` with float sums, so restore order must
        match selection order."""
        return {
            "arms": [
                [a, s.n_selected, s.mean_reward, s.total_reward]
                for a, s in self.arms.items()
            ],
            "last_score": self.last_score,
            "total_selections": self.total_selections,
        }

    def restore_state(self, state: dict) -> None:
        self.arms = {
            action_id: ArmState(
                n_selected=n_selected,
                mean_reward=mean_reward,
                total_reward=total_reward,
            )
            for action_id, n_selected, mean_reward, total_reward
            in state["arms"]
        }
        self.last_score = state["last_score"]
        self.total_selections = state["total_selections"]


@dataclass
class EpsilonGreedyBandit(SleepingBandit):
    """ε-greedy alternative (paper Appendix C): explore uniformly with
    probability ε, otherwise pick the awake arm with the highest mean.

    Simpler than AUER but lacks its principled confidence bonus; the
    paper excluded it in favour of AUER partly for stability.
    """

    explore_probability: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = derive_rng(self.seed, "bandit", "epsilon-greedy")

    def select(self, awake_actions: list[int], t: int) -> int:
        if not awake_actions:
            raise ValueError("no awake action to select")
        for action_id in awake_actions:
            self.ensure_arm(action_id)
        if self._rng.random() < self.explore_probability:
            choice = self._rng.choice(awake_actions)
        else:
            choice = max(awake_actions, key=lambda a: self.arms[a].mean_reward)
        self.last_score = self.arms[choice].mean_reward
        return choice

    def snapshot_state(self) -> dict:
        from repro.checkpoint.codec import encode_rng_state

        state = super().snapshot_state()
        state["rng"] = encode_rng_state(self._rng)
        return state

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_rng_state

        super().restore_state(state)
        self._rng.setstate(decode_rng_state(state["rng"]))


@dataclass
class ThompsonSamplingBandit(SleepingBandit):
    """Gaussian Thompson Sampling alternative (paper Appendix C).

    Samples a plausible mean reward per awake arm from
    N(R̄_a, scale² / (N_a + 1)) and picks the argmax.  Probabilistic —
    the paper preferred the deterministic AUER for crawl *stability*
    (same output across runs) and because priors are unavailable.
    """

    prior_scale: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = derive_rng(self.seed, "bandit", "thompson")

    def select(self, awake_actions: list[int], t: int) -> int:
        if not awake_actions:
            raise ValueError("no awake action to select")
        best_action = awake_actions[0]
        best_sample = -math.inf
        for action_id in awake_actions:
            self.ensure_arm(action_id)
            arm = self.arms[action_id]
            scale = self.prior_scale / math.sqrt(arm.n_selected + 1.0)
            sample = self._rng.gauss(arm.mean_reward, scale)
            if sample > best_sample:
                best_sample = sample
                best_action = action_id
        self.last_score = best_sample
        return best_action

    def snapshot_state(self) -> dict:
        from repro.checkpoint.codec import encode_rng_state

        state = super().snapshot_state()
        state["rng"] = encode_rng_state(self._rng)
        return state

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_rng_state

        super().restore_state(state)
        self._rng.setstate(decode_rng_state(state["rng"]))


def make_bandit(
    policy: str,
    alpha: float = DEFAULT_ALPHA,
    epsilon: float = 1e-6,
    seed: int = 0,
) -> SleepingBandit:
    """Bandit-policy factory: ``auer`` (the paper's choice, default),
    ``epsilon-greedy`` or ``thompson`` (the Appendix C alternatives)."""
    if policy == "auer":
        return SleepingBandit(alpha=alpha, epsilon=epsilon)
    if policy == "epsilon-greedy":
        return EpsilonGreedyBandit(alpha=alpha, epsilon=epsilon, seed=seed)
    if policy == "thompson":
        return ThompsonSamplingBandit(alpha=alpha, epsilon=epsilon, seed=seed)
    raise ValueError(
        f"unknown bandit policy: {policy!r} "
        "(pick auer, epsilon-greedy or thompson)"
    )
