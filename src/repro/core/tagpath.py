"""Tag-path vectorisation (Sec. 3.2, Fig. 3).

A tag path is tokenised into its DOM segments, extended with BOS/EOS
markers, and represented as a bag of *n-grams of segments* — n-grams
preserve segment order, which the paper shows is significant (Table 4,
n = 1 vs n ≥ 2).  The n-gram vocabulary grows during the crawl, so raw
BoW vectors have varying length d; each is projected into a fixed
dimension D = 2^m with the hash

    h(x) = floor(((Π·x) mod 2^w) / 2^(w-m)),   Π a large prime, w > m.

Colliding vocabulary positions are resolved by *averaging*: the value of
output bucket j is the mean of p[i] over **all** current vocabulary
positions i with h(i) = j (zero entries included), exactly as in the
paper's worked example (Fig. 3: p_D[3] = (p[4]+p[8]+p[9])/3).
"""

from __future__ import annotations

import numpy as np

#: Beginning/end-of-stream markers (Fig. 3).
BOS = "<BOS>"
EOS = "<EOS>"

#: Default hash parameters (Π is the prime of the paper's example).
DEFAULT_PRIME = 766_245_317
DEFAULT_W = 15
DEFAULT_M = 8


def projection_hash(x: int, m: int = DEFAULT_M, w: int = DEFAULT_W,
                    prime: int = DEFAULT_PRIME) -> int:
    """The paper's position hash: maps any integer to [0, 2^m)."""
    if w <= m:
        raise ValueError("hash requires w > m")
    return ((prime * x) % (1 << w)) >> (w - m)


def tokenize_tag_path(tag_path: str) -> list[str]:
    """Split a canonical tag path into its segment tokens, with BOS/EOS."""
    segments = [s for s in tag_path.split(" ") if s]
    return [BOS, *segments, EOS]


class TagPathVectorizer:
    """Online n-gram vocabulary + fixed-dimension hash projection.

    The vocabulary is built dynamically as tag paths are observed; the
    bucket structure of the projection (which input positions share an
    output bucket, and each bucket's current size) is maintained
    incrementally so projecting one path costs O(nnz).

    Featurization (tokenize → n-grams → vocabulary positions → output
    buckets) is memoized per tag-path string: a crawl sees the same
    template paths over and over, and a path whose n-grams are all known
    cannot grow the vocabulary, so its (bucket, count) pairs never
    change.  Only the final bucket *means* depend on the current
    vocabulary size, and those are recomputed on every projection —
    cached and uncached paths produce bit-identical vectors.
    """

    def __init__(
        self,
        n: int = 2,
        m: int = DEFAULT_M,
        w: int = DEFAULT_W,
        prime: int = DEFAULT_PRIME,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.m = m
        self.w = w
        self.prime = prime
        self.dim = 1 << m
        self._vocabulary: dict[tuple[str, ...], int] = {}
        #: h(i) for every vocabulary position i, in position order.
        self._position_bucket: list[int] = []
        #: number of vocabulary positions mapping to each output bucket.
        self._bucket_sizes = np.zeros(self.dim, dtype=np.float64)
        #: per tag path: (bucket indices, counts) in first-occurrence
        #: order — the memoized featurization described above.
        self._path_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # -- vocabulary ------------------------------------------------------

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)

    def _ngrams(self, tag_path: str) -> list[tuple[str, ...]]:
        tokens = tokenize_tag_path(tag_path)
        if self.n == 1:
            return [(t,) for t in tokens]
        if len(tokens) < self.n:
            return [tuple(tokens)]
        return [tuple(tokens[i : i + self.n]) for i in range(len(tokens) - self.n + 1)]

    def _position(self, ngram: tuple[str, ...]) -> int:
        position = self._vocabulary.get(ngram)
        if position is None:
            position = len(self._vocabulary)
            self._vocabulary[ngram] = position
            bucket = projection_hash(position, self.m, self.w, self.prime)
            self._position_bucket.append(bucket)
            self._bucket_sizes[bucket] += 1.0
        return position

    # -- projection ----------------------------------------------------------

    def _featurize(self, tag_path: str) -> tuple[np.ndarray, np.ndarray]:
        """Memoized (buckets, counts) of one tag path, growing the
        vocabulary on a cache miss.  Bucket order is the first-occurrence
        order of the path's n-grams, so the float accumulation order of
        :meth:`project` is identical with and without the cache."""
        cached = self._path_cache.get(tag_path)
        if cached is not None:
            return cached
        counts: dict[int, float] = {}
        for ngram in self._ngrams(tag_path):
            position = self._position(ngram)
            counts[position] = counts.get(position, 0.0) + 1.0
        position_bucket = self._position_bucket
        buckets = np.fromiter(
            (position_bucket[p] for p in counts), dtype=np.intp, count=len(counts)
        )
        values = np.fromiter(counts.values(), dtype=np.float64, count=len(counts))
        cached = (buckets, values)
        self._path_cache[tag_path] = cached
        return cached

    def project(self, tag_path: str) -> np.ndarray:
        """Vectorise one tag path into the fixed D-dimensional space.

        New n-grams extend the vocabulary first (as in Fig. 3, where the
        vocabulary grows from d_k = 5 to d_{k+1} = 11 before the BoW is
        computed), then bucket means are formed over the *current*
        vocabulary size.
        """
        buckets, values = self._featurize(tag_path)
        # bincount accumulates the weights sequentially, so colliding
        # buckets sum in the same order as the pre-vectorized loop did.
        projected = np.bincount(buckets, weights=values, minlength=self.dim)
        occupied = self._bucket_sizes > 0
        projected[occupied] /= self._bucket_sizes[occupied]
        return projected

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """The vocabulary n-grams in position order are the *whole*
        mutable state: bucket assignments and sizes re-derive from
        :func:`projection_hash`, and the path cache is a memo whose
        presence is bit-invisible (class docstring), so it is dropped."""
        return {
            "vocabulary": [list(ngram) for ngram in self._vocabulary],
        }

    def restore_state(self, state: dict) -> None:
        self._vocabulary = {}
        self._position_bucket = []
        self._bucket_sizes = np.zeros(self.dim, dtype=np.float64)
        self._path_cache = {}
        for ngram in state["vocabulary"]:
            self._position(tuple(ngram))

    def project_many(self, tag_paths: list[str]) -> np.ndarray:
        """Batched projection: one ``(len(tag_paths), D)`` matrix.

        The vocabulary is grown over the *whole* batch first, then every
        row is formed under the final vocabulary — use it for offline /
        bulk featurization where all paths are known up front.  (A
        sequential :meth:`project` loop instead projects each path under
        the vocabulary as of that call; the two agree exactly when no
        path introduces new n-grams.)
        """
        featurized = [self._featurize(path) for path in tag_paths]
        dim = self.dim
        projected = np.empty((len(tag_paths), dim), dtype=np.float64)
        for row, (buckets, values) in enumerate(featurized):
            projected[row] = np.bincount(buckets, weights=values, minlength=dim)
        occupied = self._bucket_sizes > 0
        projected[:, occupied] /= self._bucket_sizes[occupied]
        return projected
