"""Tag-path vectorisation (Sec. 3.2, Fig. 3).

A tag path is tokenised into its DOM segments, extended with BOS/EOS
markers, and represented as a bag of *n-grams of segments* — n-grams
preserve segment order, which the paper shows is significant (Table 4,
n = 1 vs n ≥ 2).  The n-gram vocabulary grows during the crawl, so raw
BoW vectors have varying length d; each is projected into a fixed
dimension D = 2^m with the hash

    h(x) = floor(((Π·x) mod 2^w) / 2^(w-m)),   Π a large prime, w > m.

Colliding vocabulary positions are resolved by *averaging*: the value of
output bucket j is the mean of p[i] over **all** current vocabulary
positions i with h(i) = j (zero entries included), exactly as in the
paper's worked example (Fig. 3: p_D[3] = (p[4]+p[8]+p[9])/3).
"""

from __future__ import annotations

import numpy as np

#: Beginning/end-of-stream markers (Fig. 3).
BOS = "<BOS>"
EOS = "<EOS>"

#: Default hash parameters (Π is the prime of the paper's example).
DEFAULT_PRIME = 766_245_317
DEFAULT_W = 15
DEFAULT_M = 8


def projection_hash(x: int, m: int = DEFAULT_M, w: int = DEFAULT_W,
                    prime: int = DEFAULT_PRIME) -> int:
    """The paper's position hash: maps any integer to [0, 2^m)."""
    if w <= m:
        raise ValueError("hash requires w > m")
    return ((prime * x) % (1 << w)) >> (w - m)


def tokenize_tag_path(tag_path: str) -> list[str]:
    """Split a canonical tag path into its segment tokens, with BOS/EOS."""
    segments = [s for s in tag_path.split(" ") if s]
    return [BOS, *segments, EOS]


class TagPathVectorizer:
    """Online n-gram vocabulary + fixed-dimension hash projection.

    The vocabulary is built dynamically as tag paths are observed; the
    bucket structure of the projection (which input positions share an
    output bucket, and each bucket's current size) is maintained
    incrementally so projecting one path costs O(nnz).
    """

    def __init__(
        self,
        n: int = 2,
        m: int = DEFAULT_M,
        w: int = DEFAULT_W,
        prime: int = DEFAULT_PRIME,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.m = m
        self.w = w
        self.prime = prime
        self.dim = 1 << m
        self._vocabulary: dict[tuple[str, ...], int] = {}
        #: h(i) for every vocabulary position i, in position order.
        self._position_bucket: list[int] = []
        #: number of vocabulary positions mapping to each output bucket.
        self._bucket_sizes = np.zeros(self.dim, dtype=np.float64)

    # -- vocabulary ------------------------------------------------------

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)

    def _ngrams(self, tag_path: str) -> list[tuple[str, ...]]:
        tokens = tokenize_tag_path(tag_path)
        if self.n == 1:
            return [(t,) for t in tokens]
        if len(tokens) < self.n:
            return [tuple(tokens)]
        return [tuple(tokens[i : i + self.n]) for i in range(len(tokens) - self.n + 1)]

    def _position(self, ngram: tuple[str, ...]) -> int:
        position = self._vocabulary.get(ngram)
        if position is None:
            position = len(self._vocabulary)
            self._vocabulary[ngram] = position
            bucket = projection_hash(position, self.m, self.w, self.prime)
            self._position_bucket.append(bucket)
            self._bucket_sizes[bucket] += 1.0
        return position

    # -- projection ----------------------------------------------------------

    def project(self, tag_path: str) -> np.ndarray:
        """Vectorise one tag path into the fixed D-dimensional space.

        New n-grams extend the vocabulary first (as in Fig. 3, where the
        vocabulary grows from d_k = 5 to d_{k+1} = 11 before the BoW is
        computed), then bucket means are formed over the *current*
        vocabulary size.
        """
        counts: dict[int, float] = {}
        for ngram in self._ngrams(tag_path):
            position = self._position(ngram)
            counts[position] = counts.get(position, 0.0) + 1.0
        projected = np.zeros(self.dim, dtype=np.float64)
        for position, count in counts.items():
            projected[self._position_bucket[position]] += count
        occupied = self._bucket_sizes > 0
        projected[occupied] /= self._bucket_sizes[occupied]
        return projected
