"""Crawl frontier partitioned by action.

The frontier holds the discovered-but-unvisited HTML URLs.  The SB
crawler needs three operations, all O(1): add a URL under its action,
draw a uniformly random URL from a given action (Sec. 3.2: "our crawler
randomly chooses an unvisited link l ∈ a with equal probability"), and
know which actions are *awake* (still have unvisited links).
"""

from __future__ import annotations

import random


class _RandomPool:
    """Set with O(1) uniform sampling-without-replacement (swap-pop)."""

    def __init__(self) -> None:
        self._items: list[str] = []
        self._positions: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: str) -> bool:
        return item in self._positions

    def add(self, item: str) -> None:
        if item in self._positions:
            return
        self._positions[item] = len(self._items)
        self._items.append(item)

    def pop_random(self, rng: random.Random) -> str:
        index = rng.randrange(len(self._items))
        item = self._items[index]
        self._remove_at(index)
        return item

    def remove(self, item: str) -> bool:
        index = self._positions.get(item)
        if index is None:
            return False
        self._remove_at(index)
        return True

    def _remove_at(self, index: int) -> None:
        last = self._items[-1]
        item = self._items[index]
        self._items[index] = last
        self._positions[last] = index
        self._items.pop()
        del self._positions[item]


class Frontier:
    """Unvisited URLs grouped by the action of the link that found them."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._pools: dict[int, _RandomPool] = {}
        self._url_action: dict[str, int] = {}
        self._total = 0

    def __len__(self) -> int:
        return self._total

    def __contains__(self, url: str) -> bool:
        return url in self._url_action

    def add(self, url: str, action_id: int) -> None:
        """Register a newly discovered URL under its action."""
        if url in self._url_action:
            return
        pool = self._pools.get(action_id)
        if pool is None:
            pool = _RandomPool()
            self._pools[action_id] = pool
        pool.add(url)
        self._url_action[url] = action_id
        self._total += 1

    def pop_from_action(self, action_id: int) -> str:
        """Draw a uniformly random unvisited URL of ``action_id``."""
        pool = self._pools.get(action_id)
        if pool is None or len(pool) == 0:
            raise KeyError(f"action {action_id} is asleep (no unvisited links)")
        url = pool.pop_random(self._rng)
        del self._url_action[url]
        self._total -= 1
        return url

    def pop_random(self) -> str:
        """Draw uniformly over *all* frontier URLs (used before any action
        exists, and by the RANDOM baseline)."""
        if self._total == 0:
            raise KeyError("frontier is empty")
        # Weight actions by pool size for global uniformity.
        pools = [(a, p) for a, p in self._pools.items() if len(p) > 0]
        weights = [len(p) for _, p in pools]
        action_id = self._rng.choices([a for a, _ in pools], weights=weights, k=1)[0]
        return self.pop_from_action(action_id)

    def discard(self, url: str) -> bool:
        """Remove a URL discovered to be already visited (e.g. redirects)."""
        action_id = self._url_action.pop(url, None)
        if action_id is None:
            return False
        self._pools[action_id].remove(url)
        self._total -= 1
        return True

    def awake_actions(self) -> list[int]:
        """Actions that still have unvisited links (1_a(t) = 1)."""
        return [a for a, p in self._pools.items() if len(p) > 0]

    # -- instrumentation (repro.obs) -------------------------------------

    def n_awake(self) -> int:
        """Number of awake actions (the ``actions_awake`` gauge)."""
        return sum(1 for p in self._pools.values() if len(p) > 0)

    def action_sizes(self) -> dict[int, int]:
        """Unvisited-URL count per awake action, for frontier-shape
        reports; insertion order (deterministic), empty pools omitted."""
        return {a: len(p) for a, p in self._pools.items() if len(p) > 0}

    def action_of(self, url: str) -> int | None:
        return self._url_action.get(url)

    def size_of(self, action_id: int) -> int:
        pool = self._pools.get(action_id)
        return len(pool) if pool is not None else 0
