"""Crawl frontier partitioned by action.

The frontier holds the discovered-but-unvisited HTML URLs.  The SB
crawler needs three operations, all O(1): add a URL under its action,
draw a uniformly random URL from a given action (Sec. 3.2: "our crawler
randomly chooses an unvisited link l ∈ a with equal probability"), and
know which actions are *awake* (still have unvisited links).

The global draw (``pop_random``) is weighted by pool size.  It used to
rebuild the (action, weight) lists on every call — O(#actions) per draw
— and now runs in O(log #actions) over a Fenwick tree of pool sizes
kept in pool-creation order.  The tree search consumes exactly one
``rng.random()`` like ``random.Random.choices`` did and resolves the
same prefix-sum inversion, so the sampled sequence is bit-for-bit
unchanged (asserted by ``tests/test_core_frontier.py``).
"""

from __future__ import annotations

import random


class _RandomPool:
    """Set with O(1) uniform sampling-without-replacement (swap-pop)."""

    def __init__(self) -> None:
        self._items: list[str] = []
        self._positions: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: str) -> bool:
        return item in self._positions

    def add(self, item: str) -> None:
        if item in self._positions:
            return
        self._positions[item] = len(self._items)
        self._items.append(item)

    def pop_random(self, rng: random.Random) -> str:
        index = rng.randrange(len(self._items))
        item = self._items[index]
        self._remove_at(index)
        return item

    def remove(self, item: str) -> bool:
        index = self._positions.get(item)
        if index is None:
            return False
        self._remove_at(index)
        return True

    def _remove_at(self, index: int) -> None:
        last = self._items[-1]
        item = self._items[index]
        self._items[index] = last
        self._positions[last] = index
        self._items.pop()
        del self._positions[item]


class _SizeFenwick:
    """Append-only Fenwick (binary indexed) tree over integer weights.

    Supports point updates and inverse-prefix-sum search in O(log n);
    appending a slot costs O(log n) amortised.  Used to sample a slot
    with probability proportional to its weight without materialising
    the cumulative-weight list on every draw.
    """

    def __init__(self) -> None:
        self._tree: list[int] = [0]  # 1-based; _tree[0] unused
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _prefix(self, index: int) -> int:
        """Sum of weights over slots [0, index) (``index`` 0-based, exclusive)."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total

    def append(self) -> int:
        """Add a new zero-weight slot; returns its 0-based index."""
        self._size += 1
        index = self._size
        # A fresh slot has weight 0, so its tree node is the sum of the
        # slots its node covers: prefix(index-1) - prefix(index - lowbit).
        self._tree.append(
            self._prefix(index - 1) - self._prefix(index - (index & -index))
        )
        return self._size - 1

    def add(self, slot: int, delta: int) -> None:
        """Add ``delta`` to the weight of 0-based ``slot``."""
        index = slot + 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & -index

    def find(self, u: float) -> int:
        """Smallest 0-based slot whose cumulative weight exceeds ``u``.

        Equivalent to ``bisect_right(cum_weights, u)`` over the dense
        cumulative-weight list: integer node sums compare exactly
        against the float ``u``, and zero-weight slots (which leave the
        cumulative sum flat) are never selected.  Returns ``size`` when
        ``u`` is at or beyond the total.
        """
        position = 0
        remaining = u
        step = 1
        while (step << 1) <= self._size:
            step <<= 1
        while step > 0:
            candidate = position + step
            if candidate <= self._size and self._tree[candidate] <= remaining:
                remaining -= self._tree[candidate]
                position = candidate
            step >>= 1
        return position  # 0-based: slots [0, position) have cum <= u


class Frontier:
    """Unvisited URLs grouped by the action of the link that found them."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._pools: dict[int, _RandomPool] = {}
        self._url_action: dict[str, int] = {}
        self._total = 0
        #: slot of each action in the Fenwick tree (pool-creation order).
        self._slot_of: dict[int, int] = {}
        #: inverse mapping: slot index -> action id.
        self._slot_action: list[int] = []
        self._sizes = _SizeFenwick()
        self._n_awake = 0

    def __len__(self) -> int:
        return self._total

    def __contains__(self, url: str) -> bool:
        return url in self._url_action

    def add(self, url: str, action_id: int) -> None:
        """Register a newly discovered URL under its action."""
        if url in self._url_action:
            return
        pool = self._pools.get(action_id)
        if pool is None:
            pool = _RandomPool()
            self._pools[action_id] = pool
            self._slot_of[action_id] = self._sizes.append()
            self._slot_action.append(action_id)
        if len(pool) == 0:
            self._n_awake += 1
        pool.add(url)
        self._sizes.add(self._slot_of[action_id], 1)
        self._url_action[url] = action_id
        self._total += 1

    def pop_from_action(self, action_id: int) -> str:
        """Draw a uniformly random unvisited URL of ``action_id``."""
        pool = self._pools.get(action_id)
        if pool is None or len(pool) == 0:
            raise KeyError(f"action {action_id} is asleep (no unvisited links)")
        url = pool.pop_random(self._rng)
        self._account_removal(action_id, pool)
        del self._url_action[url]
        return url

    def pop_random(self) -> str:
        """Draw uniformly over *all* frontier URLs (used before any action
        exists, and by the RANDOM baseline).

        Pool sizes weight the draw so the global distribution is uniform
        over URLs; the Fenwick search replays ``random.choices``'s
        prefix-sum inversion in O(log #actions).
        """
        if self._total == 0:
            raise KeyError("frontier is empty")
        u = self._rng.random() * float(self._total)
        slot = self._sizes.find(u)
        if slot >= len(self._slot_action) or len(
            self._pools[self._slot_action[slot]]
        ) == 0:
            # Float round-up at the very top of the range (u == total):
            # clamp to the last awake pool, as bisect's hi bound did.
            slot = max(
                s for s, a in enumerate(self._slot_action)
                if len(self._pools[a]) > 0
            )
        return self.pop_from_action(self._slot_action[slot])

    def discard(self, url: str) -> bool:
        """Remove a URL discovered to be already visited (e.g. redirects)."""
        action_id = self._url_action.pop(url, None)
        if action_id is None:
            return False
        pool = self._pools[action_id]
        pool.remove(url)
        self._account_removal(action_id, pool)
        return True

    def _account_removal(self, action_id: int, pool: _RandomPool) -> None:
        self._sizes.add(self._slot_of[action_id], -1)
        self._total -= 1
        if len(pool) == 0:
            self._n_awake -= 1

    def awake_actions(self) -> list[int]:
        """Actions that still have unvisited links (1_a(t) = 1)."""
        return [a for a, p in self._pools.items() if len(p) > 0]

    # -- instrumentation (repro.obs) -------------------------------------

    def n_awake(self) -> int:
        """Number of awake actions (the ``actions_awake`` gauge)."""
        return self._n_awake

    def action_sizes(self) -> dict[int, int]:
        """Unvisited-URL count per awake action, for frontier-shape
        reports; insertion order (deterministic), empty pools omitted."""
        return {a: len(p) for a, p in self._pools.items() if len(p) > 0}

    def action_of(self, url: str) -> int | None:
        return self._url_action.get(url)

    def size_of(self, action_id: int) -> int:
        pool = self._pools.get(action_id)
        return len(pool) if pool is not None else 0

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """Pools in slot (creation) order with their ``_items`` verbatim
        — swap-pop order is sampling order, so it must survive — plus
        the exact RNG stream position."""
        from repro.checkpoint.codec import encode_rng_state

        return {
            "rng": encode_rng_state(self._rng),
            "pools": [
                [action_id, list(self._pools[action_id]._items)]
                for action_id in self._slot_action
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild every derived structure (positions, Fenwick tree,
        awake count) from the pool lists; the RNG continues mid-stream."""
        from repro.checkpoint.codec import decode_rng_state

        self._pools = {}
        self._url_action = {}
        self._total = 0
        self._slot_of = {}
        self._slot_action = []
        self._sizes = _SizeFenwick()
        self._n_awake = 0
        for action_id, items in state["pools"]:
            pool = _RandomPool()
            self._pools[action_id] = pool
            self._slot_of[action_id] = self._sizes.append()
            self._slot_action.append(action_id)
            for url in items:
                pool.add(url)
                self._url_action[url] = action_id
            self._sizes.add(self._slot_of[action_id], len(items))
            self._total += len(items)
            if items:
                self._n_awake += 1
        self._rng.setstate(decode_rng_state(state["rng"]))
