"""The SB crawler: Algorithms 3 and 4 of the paper.

``SBCrawler`` is SB-CLASSIFIER with the online URL classifier, or
SB-ORACLE when ``SBConfig.use_oracle`` is set.  One crawl step:

1. *Select an action* with the sleeping-bandit score (Algorithm 3) and
   draw a uniformly random unvisited link of that action — or a random
   frontier link while no action exists yet.
2. *Crawl the page* (Algorithm 4): GET; dispatch on status (errors
   return, redirects are followed if unseen, 2xx pages are processed);
   extract in-site links from HTML; classify every new link (HEAD
   during the classifier's initial phase, free prediction afterwards);
   HTML links are mapped to actions (Algorithm 1) and queued; target
   links are fetched immediately and counted into the reward.
3. *Update* the chosen action's running mean reward.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.actions import ActionSpace
from repro.core.bandit import DEFAULT_ALPHA, SleepingBandit, make_bandit
from repro.core.base import Crawler, CrawlResult
from repro.core.early_stopping import EarlyStoppingMonitor
from repro.core.frontier import Frontier
from repro.core.tagpath import DEFAULT_M, DEFAULT_PRIME, DEFAULT_W, TagPathVectorizer
from repro.core.url_classifier import (
    LinkContext,
    OnlineUrlClassifier,
    OracleUrlClassifier,
    UrlClass,
)
from repro.http.environment import CrawlEnvironment
from repro.http.messages import Response
from repro.http.robots import RobotsPolicy, fetch_robots_policy
from repro.ml.metrics import ConfusionMatrix
from repro.obs.events import ActionCreated, ActionSelected, TargetFound
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.webgraph.mime import is_blocklisted_extension, is_target_mime

#: Sentinel action for the root URL (discovered before any action exists).
_ROOT_ACTION = -1

#: Recursion guard for redirect / immediate-target chains.
_MAX_CHAIN_DEPTH = 25


@dataclass(frozen=True)
class SBConfig:
    """Hyper-parameters of the SB crawler (defaults from Sec. 4.5).

    The paper's default projection dimension is m = 12; Sec. 4.6 reports
    that m has no significant effect, and the scaled-down sites used
    here need far fewer buckets, so the library defaults to m = 8.
    """

    alpha: float = DEFAULT_ALPHA          # exploration-exploitation (2√2)
    theta: float = 0.75                   # tag-path similarity threshold
    ngram_n: int = 2                      # n-grams over tag-path segments
    m: int = DEFAULT_M                    # projected dimension D = 2^m
    w: int = DEFAULT_W                    # hash width (w > m)
    prime: int = DEFAULT_PRIME            # hash multiplier Π
    epsilon: float = 1e-6                 # bandit division guard
    bandit_policy: str = "auer"           # auer | epsilon-greedy | thompson
    #: times an abandoned (transient, retries exhausted) URL is requeued
    #: into its frontier action before it is dead-lettered
    max_requeues: int = 2
    batch_size: int = 10                  # URL-classifier batch b
    classifier_model: str = "LR"          # LR | SVM | NB | PA
    feature_set: str = "URL_ONLY"         # URL_ONLY | URL_CONT
    use_oracle: bool = False              # SB-ORACLE instead of SB-CLASSIFIER
    respect_robots: bool = True           # fetch & honour robots.txt
    early_stopping: bool = False
    es_window: int = 1000                 # ν
    es_threshold: float = 0.2             # ε (targets per iteration)
    es_decay: float = 0.05                # γ
    es_patience: int = 15                 # κ
    seed: int = 0
    #: event sink (docs/observability.md); None falls back to the
    #: environment's observer, which defaults to the shared no-op
    observer: Observer | None = None

    def with_seed(self, seed: int) -> "SBConfig":
        return replace(self, seed=seed)


@dataclass
class _SBState:
    """Mutable state of one crawl run (keeps SBCrawler.crawl reentrant)."""

    env: CrawlEnvironment
    client: object
    vectorizer: TagPathVectorizer
    actions: ActionSpace
    bandit: SleepingBandit
    frontier: Frontier
    classifier: object
    monitor: EarlyStoppingMonitor | None
    visited: set[str] = field(default_factory=set)
    seen: set[str] = field(default_factory=set)
    targets: set[str] = field(default_factory=set)
    dead_letters: list[str] = field(default_factory=list)
    requeues: dict[str, int] = field(default_factory=dict)
    t: int = 0
    confusion: ConfusionMatrix = field(default_factory=ConfusionMatrix)
    oracle: OracleUrlClassifier | None = None
    robots: RobotsPolicy = field(default_factory=RobotsPolicy)
    observer: Observer = NULL_OBSERVER


class SBCrawler(Crawler):
    """SB-CLASSIFIER / SB-ORACLE (the paper's contribution)."""

    def __init__(self, config: SBConfig | None = None, name: str | None = None) -> None:
        self.config = config or SBConfig()
        if name is not None:
            self.name = name
        else:
            self.name = "SB-ORACLE" if self.config.use_oracle else "SB-CLASSIFIER"

    # -- setup ------------------------------------------------------------

    def _new_state(self, env: CrawlEnvironment) -> _SBState:
        config = self.config
        observer = (
            config.observer if config.observer is not None else env.observer
        )
        vectorizer = TagPathVectorizer(
            n=config.ngram_n, m=config.m, w=config.w, prime=config.prime
        )
        actions = ActionSpace(vectorizer, theta=config.theta, seed=config.seed)
        bandit = make_bandit(
            config.bandit_policy, alpha=config.alpha,
            epsilon=config.epsilon, seed=config.seed,
        )
        frontier = Frontier(seed=config.seed)
        if config.use_oracle:
            classifier: object = OracleUrlClassifier(env.graph, env.target_mimes)
        else:
            classifier = OnlineUrlClassifier(
                batch_size=config.batch_size,
                model=config.classifier_model,
                feature_set=config.feature_set,
                seed=config.seed,
                observer=observer,
            )
        monitor = None
        if config.early_stopping:
            monitor = EarlyStoppingMonitor(
                window=config.es_window,
                threshold=config.es_threshold,
                decay=config.es_decay,
                patience=config.es_patience,
                observer=observer,
            )
        return _SBState(
            env=env,
            client=env.new_client(self.name, observer=observer),
            observer=observer,
            vectorizer=vectorizer,
            actions=actions,
            bandit=bandit,
            frontier=frontier,
            classifier=classifier,
            monitor=monitor,
            oracle=OracleUrlClassifier(env.graph, env.target_mimes),
        )

    # -- Algorithm 3 ----------------------------------------------------------

    def crawl(
        self,
        env: CrawlEnvironment,
        budget: float | None = None,
        cost_model: str = "requests",
        checkpoint=None,
    ) -> CrawlResult:
        state = self._new_state(env)
        if checkpoint is not None and checkpoint.resume_payload is not None:
            # Resume: the snapshot was taken at the top of the crawl
            # loop, after robots fetch and root seeding, so neither is
            # repeated here.
            self._restore_crawl_state(state, checkpoint.resume_payload)
        else:
            if self.config.respect_robots:
                state.robots = fetch_robots_policy(state.client, env.root_url)
            state.seen.add(env.root_url)
            state.frontier.add(env.root_url, _ROOT_ACTION)
        stopped_early = False

        while len(state.frontier) > 0:
            if checkpoint is not None:
                # May raise CrawlInterrupted after saving a final
                # checkpoint; the payload describes state *before* this
                # iteration, so resume re-executes it exactly.
                checkpoint.tick(lambda: self._checkpoint_payload(state))
            if self.budget_exhausted(state.client, budget, cost_model):
                break
            awake = [a for a in state.frontier.awake_actions() if a != _ROOT_ACTION]
            if awake:
                action_id = state.bandit.select(awake, max(state.t, 1))
                url = state.frontier.pop_from_action(action_id)
                state.bandit.record_selection(action_id)
            else:
                action_id = None
                url = state.frontier.pop_random()
            reward = self._crawl_next_page(state, url, action_id, budget, cost_model)
            if state.observer.enabled:
                state.observer.on_event(
                    ActionSelected(
                        step=state.t,
                        action_id=action_id if action_id is not None else _ROOT_ACTION,
                        score=state.bandit.last_score if action_id is not None else 0.0,
                        n_awake=len(awake),
                        frontier_size=len(state.frontier),
                        url=url,
                        reward=reward,
                    )
                )
            if state.monitor is not None and state.monitor.observe(len(state.targets)):
                stopped_early = True
                break

        trace = state.client.trace
        if stopped_early:
            trace.stopped_early_at = len(trace.records)
        mean, std = state.bandit.nonzero_reward_stats()
        return CrawlResult(
            crawler=self.name,
            site=env.graph.name,
            trace=trace,
            visited=state.visited,
            targets=state.targets,
            stopped_early=stopped_early,
            dead_letters=state.dead_letters,
            info={
                "ledger": state.client.ledger.snapshot(),
                "n_actions": state.actions.n_actions,
                "reward_mean_nonzero": mean,
                "reward_std_nonzero": std,
                "top10_rewards": state.bandit.top_mean_rewards(10),
                "bandit": state.bandit,
                "actions": state.actions,
                "confusion": state.confusion,
                "early_stopping": state.monitor,
                "classifier_prequential_accuracy": (
                    state.classifier.prequential_accuracy()
                    if isinstance(state.classifier, OnlineUrlClassifier)
                    else 1.0
                ),
                "classifier_recent_accuracy": (
                    state.classifier.recent_accuracy()
                    if isinstance(state.classifier, OnlineUrlClassifier)
                    else 1.0
                ),
            },
        )

    # -- checkpointing (repro.checkpoint) -----------------------------------

    def _checkpoint_payload(self, state: _SBState) -> dict:
        """Full crawl state as a canonical-JSON-safe payload (see
        docs/checkpoint.md for the schema)."""
        return {
            "kind": "sb-crawl",
            "crawler": self.name,
            "site": state.env.graph.name,
            "components": {
                "frontier": state.frontier.snapshot_state(),
                "bandit": state.bandit.snapshot_state(),
                "actions": state.actions.snapshot_state(),
                "vectorizer": state.vectorizer.snapshot_state(),
                "classifier": (
                    state.classifier.snapshot_state()
                    if isinstance(state.classifier, OnlineUrlClassifier)
                    else None
                ),
                "monitor": (
                    state.monitor.snapshot_state()
                    if state.monitor is not None
                    else None
                ),
                "client": state.client.snapshot_state(),
                "confusion": state.confusion.snapshot_state(),
                "robots": state.robots.snapshot_state(),
                "crawl": {
                    "t": state.t,
                    "visited": sorted(state.visited),
                    "seen": sorted(state.seen),
                    "targets": sorted(state.targets),
                    "dead_letters": list(state.dead_letters),
                    "requeues": dict(state.requeues),
                },
            },
        }

    def _restore_crawl_state(self, state: _SBState, payload: dict) -> None:
        """Inverse of :meth:`_checkpoint_payload`; fails loudly when the
        checkpoint belongs to a different crawler or site."""
        from repro.checkpoint.store import CheckpointError

        if payload.get("kind") != "sb-crawl":
            raise CheckpointError(
                f"checkpoint kind {payload.get('kind')!r} is not an "
                "sb-crawl snapshot"
            )
        if payload.get("crawler") != self.name or (
            payload.get("site") != state.env.graph.name
        ):
            raise CheckpointError(
                f"checkpoint is for {payload.get('crawler')!r} on "
                f"{payload.get('site')!r}, not {self.name!r} on "
                f"{state.env.graph.name!r}"
            )
        parts = payload["components"]
        state.frontier.restore_state(parts["frontier"])
        state.bandit.restore_state(parts["bandit"])
        state.actions.restore_state(parts["actions"])
        state.vectorizer.restore_state(parts["vectorizer"])
        if parts["classifier"] is not None:
            if not isinstance(state.classifier, OnlineUrlClassifier):
                raise CheckpointError(
                    "checkpoint carries classifier state but this "
                    "crawler runs with the oracle classifier"
                )
            state.classifier.restore_state(parts["classifier"])
        if parts["monitor"] is not None:
            if state.monitor is None:
                raise CheckpointError(
                    "checkpoint carries early-stopping state but this "
                    "crawler has early stopping disabled"
                )
            state.monitor.restore_state(parts["monitor"])
        state.client.restore_state(parts["client"])
        state.confusion.restore_state(parts["confusion"])
        state.robots.restore_state(parts["robots"])
        crawl = parts["crawl"]
        state.t = crawl["t"]
        state.visited = set(crawl["visited"])
        state.seen = set(crawl["seen"])
        state.targets = set(crawl["targets"])
        state.dead_letters = list(crawl["dead_letters"])
        state.requeues = dict(crawl["requeues"])

    # -- Algorithm 4 -----------------------------------------------------------

    def _crawl_next_page(
        self,
        state: _SBState,
        url: str,
        action_id: int | None,
        budget: float | None,
        cost_model: str,
        depth: int = 0,
    ) -> int:
        """Fetch one page; returns the number of targets retrieved by this call
        (including redirect/immediate-target recursion)."""
        if depth > _MAX_CHAIN_DEPTH:
            return 0
        if self.budget_exhausted(state.client, budget, cost_model):
            return 0
        response: Response = state.client.get(url)
        if response.abandoned:
            # Transient failure, retries exhausted: requeue into the
            # link's frontier action a bounded number of times, then
            # dead-letter (graceful degradation, docs/architecture.md).
            self._handle_abandoned(state, url, action_id)
            return 0
        state.visited.add(url)
        state.t += 1

        if response.interrupted:
            return 0
        if response.is_error:
            if response.is_permanent_error:
                state.dead_letters.append(url)
            return 0
        if response.is_redirect:
            location = response.redirect_to
            if (
                location
                and state.env.in_site(location)
                and location not in state.visited
                and location not in state.frontier
            ):
                state.seen.add(location)
                return self._crawl_next_page(
                    state, location, action_id, budget, cost_model, depth + 1
                )
            return 0

        mime = response.mime_root()
        if mime is None:
            return 0
        if "html" in mime:
            state.classifier.add_labeled(url, UrlClass.HTML)
            parsed = state.env.parse(response)
            links = [l for l in parsed.links if state.env.in_site(l.url)]
            page_text = parsed.text
        elif state.env.is_target_mime(mime):
            state.classifier.add_labeled(url, UrlClass.TARGET)
            state.targets.add(url)
            if state.observer.enabled:
                state.observer.on_event(
                    TargetFound(
                        ordinal=state.client.ledger.n_requests,
                        url=url,
                        n_targets=len(state.targets),
                    )
                )
            return 1
        else:
            return 0

        reward = 0
        for link in links:
            if link.url in state.seen:
                continue
            if is_blocklisted_extension(link.url):
                state.seen.add(link.url)
                continue
            if not state.robots.allowed(link.url):
                state.seen.add(link.url)
                continue
            label = self._classify_link(
                state, link.url, link.anchor, link.tag_path, page_text,
                budget, cost_model,
            )
            if label is None:
                break  # budget ran out during the initial HEAD phase
            state.seen.add(link.url)
            if label is UrlClass.HTML:
                n_before = state.actions.n_actions
                new_action = state.actions.assign(link.tag_path)
                state.bandit.ensure_arm(new_action)
                state.frontier.add(link.url, new_action)
                if state.observer.enabled and state.actions.n_actions > n_before:
                    state.observer.on_event(
                        ActionCreated(
                            action_id=new_action,
                            tag_path=link.tag_path,
                            n_actions=state.actions.n_actions,
                            step=state.t,
                        )
                    )
            elif label is UrlClass.TARGET:
                reward += self._crawl_next_page(
                    state, link.url, None, budget, cost_model, depth + 1
                )
            # NEITHER (oracle only): drop the link at zero cost.

        self._process_forms(state, parsed)

        if action_id is not None and action_id != _ROOT_ACTION:
            state.bandit.record_reward(action_id, float(reward))
        return reward

    def _handle_abandoned(
        self, state: _SBState, url: str, action_id: int | None
    ) -> None:
        """Requeue an abandoned URL into its frontier action, or
        dead-letter it once ``max_requeues`` chances are spent."""
        count = state.requeues.get(url, 0)
        if count < self.config.max_requeues:
            state.requeues[url] = count + 1
            state.frontier.add(
                url, action_id if action_id is not None else _ROOT_ACTION
            )
        else:
            state.dead_letters.append(url)
            state.visited.add(url)

    def _process_forms(self, state: _SBState, parsed) -> None:
        """Hook for deep-web subclasses; the base crawler ignores forms
        (the paper's crawler is navigation-only; Sec. 6 future work)."""

    # -- link classification (Algorithm 2 driver) ---------------------------

    def _classify_link(
        self,
        state: _SBState,
        url: str,
        anchor: str,
        tag_path: str,
        page_text: str,
        budget: float | None,
        cost_model: str,
    ) -> UrlClass | None:
        """Classify one newly discovered link, paying HEAD during the
        initial training phase.  Returns None if the budget died first."""
        classifier = state.classifier
        context = None
        if getattr(classifier, "feature_set", "URL_ONLY") == "URL_CONT":
            context = LinkContext(
                anchor=anchor, dom_path=tag_path, surrounding_text=page_text
            )
        if isinstance(classifier, OracleUrlClassifier):
            label = classifier.classify(url, context)
            self._record_confusion(state, url, label)
            return label
        if classifier.initial_training_phase:
            if self.budget_exhausted(state.client, budget, cost_model):
                return None
            head = state.client.head(url)
            label = _label_from_head(head, state.env.target_mimes)
            classifier.add_labeled(url, label, context)
            self._record_confusion(state, url, label)
            # HEAD already told us the truth: act on it directly.
            return label
        label = classifier.classify(url, context)
        self._record_confusion(state, url, label)
        return label

    def _record_confusion(self, state: _SBState, url: str, predicted: UrlClass) -> None:
        truth = state.oracle.classify(url) if state.oracle else UrlClass.NEITHER
        state.confusion.update(truth.value, predicted.value)


def _label_from_head(
    head: Response, target_mimes: frozenset[str] | None = None
) -> UrlClass:
    """Ground-truth label from a HEAD response (initial training phase)."""
    if head.is_redirect:
        return UrlClass.HTML  # following it will land on a live page
    if head.abandoned:
        # The HEAD never got a real answer; keep the link alive as HTML
        # so the (retried, requeued) GET path decides its fate later.
        return UrlClass.HTML
    if not head.ok:
        return UrlClass.NEITHER
    mime = head.mime_root()
    if mime is None:
        return UrlClass.NEITHER
    if "html" in mime:
        return UrlClass.HTML
    if is_target_mime(mime, target_mimes):
        return UrlClass.TARGET
    return UrlClass.NEITHER


def sb_classifier(config: SBConfig | None = None) -> SBCrawler:
    """Factory: the paper's SB-CLASSIFIER with default hyper-parameters."""
    return SBCrawler(config or SBConfig())


def sb_oracle(config: SBConfig | None = None) -> SBCrawler:
    """Factory: SB-ORACLE (perfect URL classification, Sec. 4.3)."""
    base = config or SBConfig()
    return SBCrawler(replace(base, use_oracle=True))
