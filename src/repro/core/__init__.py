"""The paper's contribution: sleeping-bandit focused crawling.

Public surface:

* :class:`~repro.core.crawler.SBCrawler` — the SB-CLASSIFIER /
  SB-ORACLE crawler (Algorithms 1–4);
* :class:`~repro.core.crawler.SBConfig` — its hyper-parameters
  (α, θ, n, m, w, batch size …, Sec. 4.5 defaults);
* supporting machinery re-exported for advanced use: tag-path
  vectorisation, the HNSW index, the action space, the sleeping bandit,
  the online URL classifier and the early-stopping monitor.
"""

from repro.core.base import Crawler, CrawlResult
from repro.core.tagpath import TagPathVectorizer, projection_hash
from repro.core.hnsw import HnswIndex
from repro.core.actions import ActionSpace
from repro.core.bandit import SleepingBandit
from repro.core.url_classifier import (
    OnlineUrlClassifier,
    OracleUrlClassifier,
    UrlClass,
)
from repro.core.early_stopping import EarlyStoppingMonitor
from repro.core.frontier import Frontier
from repro.core.crawler import SBConfig, SBCrawler

__all__ = [
    "Crawler",
    "CrawlResult",
    "TagPathVectorizer",
    "projection_hash",
    "HnswIndex",
    "ActionSpace",
    "SleepingBandit",
    "OnlineUrlClassifier",
    "OracleUrlClassifier",
    "UrlClass",
    "EarlyStoppingMonitor",
    "Frontier",
    "SBConfig",
    "SBCrawler",
]
