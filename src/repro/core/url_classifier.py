"""Online URL classifier (Sec. 3.3, Algorithm 2).

Estimates, from the URL string alone (character 2-gram bag-of-words),
whether a link leads to an HTML page or a target file.  Training is
incremental:

1. *Initial training phase*: the first ``b`` URLs are labelled by HTTP
   HEAD requests (the crawler pays for those); once the batch is full,
   the model is trained and the phase ends.
2. *Online phase*: labels come for free from every HTTP GET the crawler
   issues anyway; each full batch triggers another ``partial_fit``.

The classifier deliberately knows only two classes, "HTML" and
"Target": misclassifying a dead URL costs one wasted request, whereas
classifying a live URL as "Neither" would silently amputate the crawl
(Sec. 3.3), so "Neither" is folded away.

:class:`OracleUrlClassifier` is the unrealistic perfect-knowledge
variant used by SB-ORACLE and as TRES's unfair advantage (iii).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.ml.features import HashedVector, hashed_bow, merge_vectors
from repro.ml.linear import (
    LinearSVMSGD,
    LogisticRegressionSGD,
    PassiveAggressiveClassifier,
)
from repro.ml.naive_bayes import MultinomialNaiveBayes
from repro.obs.events import ClassifierBatchTrained
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.webgraph.mime import is_target_mime
from repro.webgraph.model import PageKind, WebsiteGraph

_FEATURE_DIM = 1 << 14


class UrlClass(Enum):
    HTML = "HTML"
    TARGET = "Target"
    NEITHER = "Neither"


@dataclass
class LinkContext:
    """Optional context features for the URL_CONT feature set (Table 5)."""

    anchor: str = ""
    dom_path: str = ""
    surrounding_text: str = ""


def _make_model(model: str, dim: int, seed: int):
    if model == "LR":
        return LogisticRegressionSGD(dim, seed=seed)
    if model == "SVM":
        return LinearSVMSGD(dim, seed=seed)
    if model == "NB":
        return MultinomialNaiveBayes(dim)
    if model == "PA":
        return PassiveAggressiveClassifier(dim, seed=seed)
    raise ValueError(f"unknown model: {model!r} (pick LR, SVM, NB or PA)")


@dataclass
class _Batch:
    vectors: list[HashedVector] = field(default_factory=list)
    labels: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.vectors)

    def clear(self) -> None:
        self.vectors.clear()
        self.labels.clear()


class OnlineUrlClassifier:
    """Algorithm 2: batched online training, two live classes."""

    def __init__(
        self,
        batch_size: int = 10,
        model: str = "LR",
        feature_set: str = "URL_ONLY",
        dim: int = _FEATURE_DIM,
        replay_buffer: int = 400,
        seed: int = 0,
        observer: Observer | None = None,
    ) -> None:
        if feature_set not in ("URL_ONLY", "URL_CONT"):
            raise ValueError("feature_set must be URL_ONLY or URL_CONT")
        self.batch_size = batch_size
        self.feature_set = feature_set
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.dim = dim
        self.model = _make_model(model, dim, seed)
        self.initial_training_phase = True
        self._batch = _Batch()
        self.n_batches_trained = 0
        # Scale adaptation: on the paper's million-page sites the model's
        # warm-up is a negligible fraction of the crawl; on scaled-down
        # sites it is not, so each training step replays a bounded window
        # of past labels to reach the same asymptotic accuracy early.
        # replay_buffer=0 restores the paper-pure incremental behaviour.
        self.replay_capacity = replay_buffer
        self._replay = _Batch()
        self._class_seen = [False, False]
        # Prequential (test-then-train) evaluation: every labelled URL is
        # first predicted with the current model, then learned from — the
        # standard online-learning accuracy estimate (Appendix B.5).
        self._prequential_total = 0
        self._prequential_correct = 0
        self._prequential_window: list[bool] = []

    # -- features ----------------------------------------------------------

    def _features(self, url: str, context: LinkContext | None) -> HashedVector:
        url_vector = hashed_bow(url, n=2, dim=self.dim, seed=1)
        if self.feature_set == "URL_ONLY" or context is None:
            return url_vector
        parts = [url_vector]
        if context.anchor:
            parts.append(hashed_bow(context.anchor, n=2, dim=self.dim, seed=2))
        if context.dom_path:
            parts.append(hashed_bow(context.dom_path, n=2, dim=self.dim, seed=3))
        if context.surrounding_text:
            parts.append(
                hashed_bow(context.surrounding_text[:200], n=2, dim=self.dim, seed=4)
            )
        return merge_vectors(parts)

    # -- training ------------------------------------------------------------

    def add_labeled(
        self, url: str, label: UrlClass, context: LinkContext | None = None
    ) -> None:
        """Record a ground-truth (URL, class) pair; train when batch full.

        During crawling these pairs come for free from GET responses
        (and from the HEAD requests of the initial phase).  "Neither"
        URLs are dropped — the model is trained on two classes only.
        """
        if label is UrlClass.NEITHER:
            return
        features = self._features(url, context)
        y = 1 if label is UrlClass.TARGET else 0
        if self.is_trained:
            correct = self.model.predict(features) == y
            self._prequential_total += 1
            self._prequential_correct += int(correct)
            self._prequential_window.append(correct)
            if len(self._prequential_window) > 500:
                del self._prequential_window[:-500]
        self._class_seen[y] = True
        self._batch.vectors.append(features)
        self._batch.labels.append(y)
        if len(self._batch) >= self.batch_size:
            fresh_examples = len(self._batch)
            vectors = self._batch.vectors + self._replay.vectors
            labels = self._batch.labels + self._replay.labels
            self.model.partial_fit(vectors, labels)
            if self.replay_capacity > 0:
                self._replay.vectors.extend(self._batch.vectors)
                self._replay.labels.extend(self._batch.labels)
                overflow = len(self._replay) - self.replay_capacity
                if overflow > 0:
                    del self._replay.vectors[:overflow]
                    del self._replay.labels[:overflow]
            self._batch.clear()
            self.n_batches_trained += 1
            # Leave the HEAD-labelled phase only once the model has seen
            # both classes: a one-class training set cannot classify, and
            # on target-dense sites the first batch is often all-HTML.
            if self._class_seen[0] and self._class_seen[1]:
                self.initial_training_phase = False
            if self.observer.enabled:
                self.observer.on_event(
                    ClassifierBatchTrained(
                        n_batches=self.n_batches_trained,
                        n_examples=fresh_examples,
                        prequential_accuracy=self.prequential_accuracy(),
                        recent_accuracy=self.recent_accuracy(),
                    )
                )

    @property
    def is_trained(self) -> bool:
        return self.n_batches_trained > 0

    def prequential_accuracy(self) -> float:
        """Cumulative test-then-train accuracy over all labelled URLs."""
        if self._prequential_total == 0:
            return 0.0
        return self._prequential_correct / self._prequential_total

    def recent_accuracy(self) -> float:
        """Accuracy over the last ≤500 labelled URLs (convergence check)."""
        if not self._prequential_window:
            return 0.0
        return sum(self._prequential_window) / len(self._prequential_window)

    # -- inference -------------------------------------------------------------

    def classify(self, url: str, context: LinkContext | None = None) -> UrlClass:
        """Predict HTML vs Target from the URL (plus context if enabled)."""
        prediction = self.model.predict(self._features(url, context))
        return UrlClass.TARGET if prediction == 1 else UrlClass.HTML

    # -- checkpointing (repro.checkpoint) --------------------------------

    @staticmethod
    def _encode_batch(batch: _Batch) -> dict:
        from repro.checkpoint.codec import encode_array

        return {
            "vectors": [
                [encode_array(v.indices), encode_array(v.values), v.dim]
                for v in batch.vectors
            ],
            "labels": list(batch.labels),
        }

    @staticmethod
    def _decode_batch(payload: dict) -> _Batch:
        from repro.checkpoint.codec import decode_array

        return _Batch(
            vectors=[
                HashedVector(decode_array(indices), decode_array(values), dim)
                for indices, values, dim in payload["vectors"]
            ],
            labels=list(payload["labels"]),
        )

    def snapshot_state(self) -> dict:
        return {
            "model": self.model.snapshot_state(),
            "initial_training_phase": self.initial_training_phase,
            "n_batches_trained": self.n_batches_trained,
            "class_seen": list(self._class_seen),
            "batch": self._encode_batch(self._batch),
            "replay": self._encode_batch(self._replay),
            "prequential": {
                "total": self._prequential_total,
                "correct": self._prequential_correct,
                "window": list(self._prequential_window),
            },
        }

    def restore_state(self, state: dict) -> None:
        self.model.restore_state(state["model"])
        self.initial_training_phase = state["initial_training_phase"]
        self.n_batches_trained = state["n_batches_trained"]
        self._class_seen = list(state["class_seen"])
        self._batch = self._decode_batch(state["batch"])
        self._replay = self._decode_batch(state["replay"])
        prequential = state["prequential"]
        self._prequential_total = prequential["total"]
        self._prequential_correct = prequential["correct"]
        self._prequential_window = list(prequential["window"])


class OracleUrlClassifier:
    """Perfect URL classification from the ground-truth graph.

    Used by SB-ORACLE (Sec. 4.3) and granted to the TRES baseline.  The
    oracle also resolves "Neither" correctly — that is exactly its
    unrealistic advantage over the online classifier.
    """

    def __init__(
        self,
        graph: WebsiteGraph,
        target_mimes: frozenset[str] | None = None,
    ) -> None:
        self._graph = graph
        self._target_mimes = target_mimes
        self.initial_training_phase = False

    def add_labeled(
        self, url: str, label: UrlClass, context: LinkContext | None = None
    ) -> None:
        """Oracles do not learn."""

    def classify(self, url: str, context: LinkContext | None = None) -> UrlClass:
        page = self._graph.get(url)
        if page is None:
            return UrlClass.NEITHER
        if page.kind is PageKind.REDIRECT:
            # Classify by the redirect's destination.
            destination = self._graph.get(page.redirect_to or "")
            if destination is None:
                return UrlClass.NEITHER
            page = destination
        if page.kind is PageKind.HTML:
            return UrlClass.HTML
        if page.kind is PageKind.TARGET and is_target_mime(
            page.mime_type, self._target_mimes
        ):
            return UrlClass.TARGET
        return UrlClass.NEITHER
