"""Hierarchical Navigable Small World (HNSW) index, from scratch.

The paper stores action centroids in an HNSW index [Malkov & Yashunin
2016], "chosen for its highly efficient updates of centroids as new tag
paths join" (Sec. 3.2, Algorithm 1).  This implementation supports the
three operations the crawler needs:

* ``insert(key, vector)`` — add a new centroid;
* ``update(key, vector)`` — move an existing centroid in place (links
  are kept; centroid drift under running means is small, so search
  quality is unaffected in practice);
* ``search(vector, k, ef)`` — approximate nearest neighbours under
  cosine distance.

Construction follows the original algorithm: geometric level sampling
with mL = 1/ln(M), greedy descent through the upper layers, beam search
(``ef``) at each level at and below the insertion level, and neighbour
selection by distance with degree bound M (2M at level 0).
"""

from __future__ import annotations

import heapq
import math
import random

import numpy as np

from repro.utils.num import approx_zero


class HnswIndex:
    """Approximate nearest-neighbour index over cosine distance."""

    def __init__(
        self,
        dim: int,
        M: int = 8,
        ef_construction: int = 32,
        ef_search: int = 24,
        seed: int = 0,
    ) -> None:
        self.dim = dim
        self.M = M
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self._ml = 1.0 / math.log(M)
        self._rng = random.Random(seed)
        self._vectors: dict[int, np.ndarray] = {}
        self._norms: dict[int, float] = {}
        #: per key: list of neighbour lists, one per layer (0 = bottom).
        self._links: dict[int, list[list[int]]] = {}
        self._entry_point: int | None = None
        self._max_level = -1

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, key: int) -> bool:
        return key in self._vectors

    # -- distance --------------------------------------------------------

    def _distance(self, query: np.ndarray, query_norm: float, key: int) -> float:
        norm = self._norms[key]
        if approx_zero(norm) or approx_zero(query_norm):
            return 1.0
        return 1.0 - float(query @ self._vectors[key]) / (query_norm * norm)

    def cosine_similarity(self, query: np.ndarray, key: int) -> float:
        query_norm = float(np.linalg.norm(query))
        return 1.0 - self._distance(query, query_norm, key)

    # -- search ---------------------------------------------------------------

    def _search_layer(
        self,
        query: np.ndarray,
        query_norm: float,
        entry_points: list[int],
        ef: int,
        level: int,
    ) -> list[tuple[float, int]]:
        """Beam search in one layer; returns (distance, key) sorted ascending."""
        visited = set(entry_points)
        distance = self._distance
        links = self._links
        heappush, heappop = heapq.heappush, heapq.heappop
        candidates = [(distance(query, query_norm, key), key) for key in entry_points]
        heapq.heapify(candidates)
        # Max-heap of current best via negated distances.
        best = [(-d, key) for d, key in candidates]
        heapq.heapify(best)
        while candidates:
            dist, key = heappop(candidates)
            worst = -best[0][0]
            if dist > worst and len(best) >= ef:
                break
            for neighbour in links[key][level]:
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                d = distance(query, query_norm, neighbour)
                if len(best) < ef or d < -best[0][0]:
                    heappush(candidates, (d, neighbour))
                    heappush(best, (-d, neighbour))
                    if len(best) > ef:
                        heappop(best)
        return sorted((-negd, key) for negd, key in best)

    def search(self, query: np.ndarray, k: int = 1, ef: int | None = None
               ) -> list[tuple[int, float]]:
        """Return up to ``k`` (key, cosine_similarity) pairs, best first."""
        if self._entry_point is None:
            return []
        ef = max(ef or self.ef_search, k)
        query_norm = float(np.linalg.norm(query))
        entry = self._entry_point
        for level in range(self._max_level, 0, -1):
            entry = self._greedy_step(query, query_norm, entry, level)
        results = self._search_layer(query, query_norm, [entry], ef, 0)
        return [(key, 1.0 - dist) for dist, key in results[:k]]

    def _greedy_step(
        self, query: np.ndarray, query_norm: float, entry: int, level: int
    ) -> int:
        distance = self._distance
        links = self._links
        current = entry
        current_dist = distance(query, query_norm, current)
        improved = True
        while improved:
            improved = False
            for neighbour in links[current][level]:
                d = distance(query, query_norm, neighbour)
                if d < current_dist:
                    current, current_dist = neighbour, d
                    improved = True
        return current

    # -- construction -----------------------------------------------------

    def _select_neighbours(
        self, candidates: list[tuple[float, int]], max_links: int
    ) -> list[int]:
        return [key for _, key in sorted(candidates)[:max_links]]

    def insert(self, key: int, vector: np.ndarray) -> None:
        if key in self._vectors:
            raise KeyError(f"key already present: {key}")
        vector = np.asarray(vector, dtype=np.float64)
        level = int(-math.log(self._rng.random() + 1e-12) * self._ml)
        self._vectors[key] = vector
        self._norms[key] = float(np.linalg.norm(vector))
        self._links[key] = [[] for _ in range(level + 1)]

        if self._entry_point is None:
            self._entry_point = key
            self._max_level = level
            return

        query_norm = self._norms[key]
        entry = self._entry_point
        for layer in range(self._max_level, level, -1):
            entry = self._greedy_step(vector, query_norm, entry, layer)

        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(
                vector, query_norm, [entry], self.ef_construction, layer
            )
            max_links = self.M * 2 if layer == 0 else self.M
            neighbours = self._select_neighbours(candidates, max_links)
            self._links[key][layer] = list(neighbours)
            for neighbour in neighbours:
                links = self._links[neighbour][layer]
                links.append(key)
                if len(links) > max_links:
                    # Prune the worst link of the overflowing node.
                    pruned = self._select_neighbours(
                        [
                            (
                                self._distance(
                                    self._vectors[neighbour],
                                    self._norms[neighbour],
                                    other,
                                ),
                                other,
                            )
                            for other in links
                        ],
                        max_links,
                    )
                    self._links[neighbour][layer] = pruned
            entry = neighbours[0] if neighbours else entry

        if level > self._max_level:
            self._max_level = level
            self._entry_point = key

    def update(self, key: int, vector: np.ndarray) -> None:
        """Move an existing point (centroid drift); links are preserved."""
        if key not in self._vectors:
            raise KeyError(f"unknown key: {key}")
        vector = np.asarray(vector, dtype=np.float64)
        self._vectors[key] = vector
        self._norms[key] = float(np.linalg.norm(vector))

    def vector(self, key: int) -> np.ndarray:
        return self._vectors[key]

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """Nodes in insertion order with bit-exact vectors and verbatim
        neighbour lists (beam-search tie-breaking depends on list
        order); norms are recomputed on restore from the same bytes."""
        from repro.checkpoint.codec import encode_array, encode_rng_state

        return {
            "rng": encode_rng_state(self._rng),
            "entry_point": self._entry_point,
            "max_level": self._max_level,
            "nodes": [
                [
                    key,
                    encode_array(self._vectors[key]),
                    [list(level) for level in self._links[key]],
                ]
                for key in self._vectors
            ],
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_array, decode_rng_state

        self._vectors = {}
        self._norms = {}
        self._links = {}
        for key, vector_payload, links in state["nodes"]:
            vector = decode_array(vector_payload)
            self._vectors[key] = vector
            self._norms[key] = float(np.linalg.norm(vector))
            self._links[key] = [list(level) for level in links]
        self._entry_point = state["entry_point"]
        self._max_level = state["max_level"]
        self._rng.setstate(decode_rng_state(state["rng"]))
