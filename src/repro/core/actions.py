"""Action space: online clustering of tag paths (Algorithm 1).

An *action* is an evolving cluster of similar (projected) tag paths,
represented only by its centroid — the running mean of member vectors.
Mapping a link to an action is Algorithm 1: find the approximately
nearest centroid in the HNSW index; if its cosine similarity is at
least θ, join that action and update its centroid; otherwise create a
new singleton action.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hnsw import HnswIndex
from repro.core.tagpath import TagPathVectorizer


@dataclass
class ActionStats:
    """Per-action cluster metadata."""

    action_id: int
    n_members: int = 0
    #: a sample tag path, for interpretability analyses (Sec. 4.7)
    example_tag_path: str = ""


class ActionSpace:
    """Maintains the evolving set of actions and their centroids."""

    def __init__(
        self,
        vectorizer: TagPathVectorizer,
        theta: float = 0.75,
        M: int = 8,
        ef_construction: int = 32,
        ef_search: int = 24,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= theta <= 1.0:
            raise ValueError("theta must be in [0, 1]")
        self.vectorizer = vectorizer
        self.theta = theta
        self.index = HnswIndex(
            vectorizer.dim, M=M, ef_construction=ef_construction,
            ef_search=ef_search, seed=seed,
        )
        self._stats: dict[int, ActionStats] = {}
        self._next_id = 0
        #: cache: identical tag-path strings always map to the same action,
        #: saving the ANN query for the (very common) repeated layouts.
        self._exact_cache: dict[str, int] = {}

    # -- accessors ---------------------------------------------------------

    @property
    def n_actions(self) -> int:
        return self._next_id

    def action_ids(self) -> list[int]:
        return list(self._stats)

    def stats(self, action_id: int) -> ActionStats:
        return self._stats[action_id]

    def centroid(self, action_id: int) -> np.ndarray:
        return self.index.vector(action_id)

    # -- Algorithm 1 ---------------------------------------------------------

    def assign(self, tag_path: str) -> int:
        """Map a link's tag path to an action (creating one if needed)."""
        cached = self._exact_cache.get(tag_path)
        if cached is not None:
            stats = self._stats[cached]
            stats.n_members += 1
            # Adding an identical member does not move a centroid formed
            # from identical members only; with mixed members the drift is
            # below θ-resolution, so the exact cache stays sound.
            return cached

        projected = self.vectorizer.project(tag_path)
        nearest = self.index.search(projected, k=1)
        if nearest:
            action_id, similarity = nearest[0]
            if similarity >= self.theta:
                self._join(action_id, projected, tag_path)
                self._exact_cache[tag_path] = action_id
                return action_id
        action_id = self._create(projected, tag_path)
        self._exact_cache[tag_path] = action_id
        return action_id

    def _join(self, action_id: int, projected: np.ndarray, tag_path: str) -> None:
        stats = self._stats[action_id]
        centroid = self.index.vector(action_id)
        count = stats.n_members
        new_centroid = centroid + (projected - centroid) / (count + 1)
        self.index.update(action_id, new_centroid)
        stats.n_members = count + 1

    def _create(self, projected: np.ndarray, tag_path: str) -> int:
        action_id = self._next_id
        self._next_id += 1
        self.index.insert(action_id, projected)
        self._stats[action_id] = ActionStats(
            action_id=action_id, n_members=1, example_tag_path=tag_path
        )
        return action_id

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        """Cluster metadata and the exact-string cache in insertion
        order, plus the full HNSW index (the shared vectorizer is
        snapshotted separately by the crawler)."""
        return {
            "next_id": self._next_id,
            "stats": [
                [s.action_id, s.n_members, s.example_tag_path]
                for s in self._stats.values()
            ],
            "exact_cache": [
                [tag_path, action_id]
                for tag_path, action_id in self._exact_cache.items()
            ],
            "index": self.index.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self._next_id = state["next_id"]
        self._stats = {
            action_id: ActionStats(
                action_id=action_id,
                n_members=n_members,
                example_tag_path=example_tag_path,
            )
            for action_id, n_members, example_tag_path in state["stats"]
        }
        self._exact_cache = {
            tag_path: action_id
            for tag_path, action_id in state["exact_cache"]
        }
        self.index.restore_state(state["index"])
