"""Early-stopping monitor (Sec. 4.8).

Every ν iterations the monitor computes the target-discovery slope
σ = (y_t − y_{t−ν}) / ν and folds it into an exponential moving average
μ ← γ·σ + (1−γ)·μ.  When μ stays below a threshold ε for κ consecutive
windows (κ·ν iterations), the crawl stops: the site is considered
exhausted.  The paper uses ν = 1000, ε = 0.2, γ = 0.05, κ = 15 on
million-page sites; on scaled-down sites the window ν should scale with
the site (the experiment harness passes ν proportional to site size).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import EarlyStopTriggered
from repro.obs.observer import NULL_OBSERVER, Observer


@dataclass
class EarlyStoppingMonitor:
    """Sliding-slope EMA stopper."""

    window: int = 1000          # ν
    threshold: float = 0.2      # ε
    decay: float = 0.05         # γ
    patience: int = 15          # κ
    #: instrumentation sink (repro.obs); the shared no-op by default
    observer: Observer = NULL_OBSERVER
    #: do not monitor before the first target is found — on scaled-down
    #: deep sites the crawler has a target-free descent phase that the
    #: paper's million-page crawls do not exhibit; stopping during it
    #: would abort a crawl that has not started discovering yet.
    arm_after_first_target: bool = True
    #: count low windows only after the EMA has once reached the
    #: threshold — "discovery must have started before it can end".
    #: Prevents cutting bursty crawls between early bursts; sites whose
    #: discovery never ramps up simply never early-stop (the paper's
    #: behaviour class ii).
    require_ramp_up: bool = True
    _ramped_up: bool = False

    _last_count: float = 0.0
    _ema: float | None = None
    _consecutive_low: int = 0
    _iterations: int = 0
    triggered_at: int | None = None
    #: history of (iteration, ema) pairs, for the Figure 15 visualisation
    history: list[tuple[int, float]] = field(default_factory=list)

    def observe(self, n_targets: float) -> bool:
        """Feed the current cumulative target count (once per crawl step).

        Returns True when the stopping condition fires.
        """
        if self.triggered_at is not None:
            return True
        if self.arm_after_first_target and n_targets <= 0:
            return False
        self._iterations += 1
        if self._iterations % self.window != 0:
            return False
        slope = (n_targets - self._last_count) / self.window
        self._last_count = n_targets
        if self._ema is None:
            self._ema = slope
        else:
            self._ema = self.decay * slope + (1.0 - self.decay) * self._ema
        self.history.append((self._iterations, self._ema))
        if self._ema >= self.threshold:
            self._ramped_up = True
        if self.require_ramp_up and not self._ramped_up:
            return False
        if self._ema < self.threshold:
            self._consecutive_low += 1
        else:
            self._consecutive_low = 0
        if self._consecutive_low >= self.patience:
            self.triggered_at = self._iterations
            if self.observer.enabled:
                self.observer.on_event(
                    EarlyStopTriggered(
                        step=self._iterations,
                        ema=self._ema,
                        window=self.window,
                        patience=self.patience,
                    )
                )
            return True
        return False

    @property
    def stopped(self) -> bool:
        return self.triggered_at is not None

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        return {
            "ramped_up": self._ramped_up,
            "last_count": self._last_count,
            "ema": self._ema,
            "consecutive_low": self._consecutive_low,
            "iterations": self._iterations,
            "triggered_at": self.triggered_at,
            "history": [[iteration, ema] for iteration, ema in self.history],
        }

    def restore_state(self, state: dict) -> None:
        self._ramped_up = state["ramped_up"]
        self._last_count = state["last_count"]
        self._ema = state["ema"]
        self._consecutive_low = state["consecutive_low"]
        self._iterations = state["iterations"]
        self.triggered_at = state["triggered_at"]
        self.history = [
            (iteration, ema) for iteration, ema in state["history"]
        ]
