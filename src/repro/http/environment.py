"""Crawl environment: one website, shared by many crawler runs.

Bundles the website graph, its simulated server and a shared
parse cache.  Because HTML parsing is deterministic per URL, caching
parsed pages across crawler runs is behaviour-preserving and mirrors
the paper's local-replication methodology (every crawler re-reads the
same stored pages, Sec. 4.4).
"""

from __future__ import annotations

from repro.html.parse import ParsedPage, parse_page
from repro.http.client import HttpClient, RetryPolicy
from repro.http.faults import FaultPlan, FaultyServer
from repro.http.messages import Response
from repro.http.server import SimulatedServer
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.webgraph.model import WebsiteGraph, same_site


class CrawlEnvironment:
    """Shared state for evaluating several crawlers on one website.

    ``target_mimes`` customises the target definition (Sec. 2.2: targets
    are resources whose MIME type is in a *user-defined* list); the
    default is the paper's 38-type list.

    ``fault_plan`` interposes a deterministic
    :class:`~repro.http.faults.FaultyServer` between clients and the
    clean server; ``retry_policy`` arms every client the environment
    creates with retry/backoff.  Both default to None — the clean path
    builds exactly the same object graph as before they existed.
    """

    def __init__(
        self,
        graph: WebsiteGraph,
        target_mimes: frozenset[str] | None = None,
        observer: Observer | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.graph = graph
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        base_server = SimulatedServer(graph)
        self.server = (
            FaultyServer(base_server, fault_plan)
            if fault_plan is not None
            else base_server
        )
        self.target_mimes = target_mimes
        #: default observer handed to every client (docs/observability.md);
        #: instruments *any* crawler's fetch stream, baselines included.
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._parse_cache: dict[str, ParsedPage] = {}

    # -- clients ---------------------------------------------------------

    def new_client(
        self, crawler_name: str = "", observer: Observer | None = None
    ) -> HttpClient:
        """A fresh client (own ledger/trace) sharing this environment.

        ``observer`` overrides the environment-level default for this
        client only (e.g. the SB crawler threading ``SBConfig.observer``).
        """
        return HttpClient(
            self.server,
            crawler_name=crawler_name,
            target_mimes=self.target_mimes,
            observer=observer if observer is not None else self.observer,
            retry_policy=self.retry_policy,
        )

    def is_target_mime(self, mime: str | None) -> bool:
        """Target test under this environment's (possibly custom) MIME set."""
        from repro.webgraph.mime import is_target_mime

        return is_target_mime(mime, self.target_mimes)

    # -- parsing -----------------------------------------------------------

    def parse(self, response: Response) -> ParsedPage:
        """Parse an HTML response body, with a URL-keyed cache.

        Link hrefs are resolved against the page URL and canonicalised
        (fragments stripped, relative forms made absolute) — the page
        may write them as ``/path``, ``page#frag`` or absolute URLs.
        """
        cached = self._parse_cache.get(response.url)
        if cached is None:
            from repro.webgraph.canonical import resolve_link
            from repro.webgraph.model import Form, Link

            raw = parse_page(response.body)
            resolved = [
                Link(
                    url=resolve_link(response.url, link.url),
                    tag_path=link.tag_path,
                    anchor=link.anchor,
                )
                for link in raw.links
            ]
            forms = [
                Form(
                    action=resolve_link(response.url, form.action),
                    fields=form.fields,
                )
                for form in raw.forms
            ]
            cached = ParsedPage(
                links=resolved, text=raw.text, title=raw.title, forms=forms
            )
            self._parse_cache[response.url] = cached
        return cached

    def invalidate(self, url: str) -> None:
        """Drop the cached parse of ``url`` (used by revisit crawling
        when a page's content changes)."""
        self._parse_cache.pop(url, None)

    def in_site(self, url: str) -> bool:
        """Website-boundary test relative to this site's root (Sec. 2.2)."""
        return same_site(self.graph.root_url, url)

    # -- ground truth (for oracles and evaluation only) ---------------------

    @property
    def root_url(self) -> str:
        return self.graph.root_url

    def _target_pages(self):
        pages = self.graph.target_pages()
        if self.target_mimes is None:
            return pages
        return [p for p in pages if self.is_target_mime(p.mime_type)]

    def total_targets(self) -> int:
        return len(self._target_pages())

    def total_target_bytes(self) -> int:
        return sum(p.size for p in self._target_pages())

    def target_urls(self) -> set[str]:
        return {p.url for p in self._target_pages()}

    def n_available(self) -> int:
        return len(self.graph.available_pages())
