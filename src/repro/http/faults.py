"""Deterministic fault injection for the simulated HTTP layer.

The paper's crawl loop (Algorithms 3–4) dispatches on 2xx/3xx/4xx/5xx,
but a clean :class:`~repro.http.server.SimulatedServer` never exercises
the failure branches.  This module wraps the server with a *seedable*
fault schedule so experiments can measure how target recall and cost
degrade under flaky infrastructure — 500/503 bursts, 429 rate limiting
with ``Retry-After``, connection timeouts, slow responses, and
truncated bodies — while staying byte-for-byte reproducible.

Design rules (docs/architecture.md, "Fault model"):

* **The clean path is untouched.**  A plan with ``rate == 0`` passes
  every request through unchanged; environments built without a plan
  never even construct the wrapper.
* **Determinism.**  All decisions come from one ``derive_rng`` stream
  consumed in request order; the same seed and request sequence yield
  the same fault schedule.  Nothing reads the clock: "slow" responses
  carry a simulated ``latency`` charged to the
  :class:`~repro.http.ledger.CostLedger`, and ``Retry-After`` values
  are delta-seconds.
* **Faults are visible.**  Injected responses carry ``fault=<kind>``
  so the client can emit ``fault_injected`` events; timeouts raise
  :class:`InjectedTimeoutError`, which only the client catches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.http.messages import Response
from repro.http.server import SimulatedServer
from repro.utils.rng import derive_rng

#: Every fault kind a plan can schedule.
FAULT_KINDS: tuple[str, ...] = (
    "server_error",   # 500/503, optionally in bursts of consecutive failures
    "rate_limit",     # 429 with a Retry-After header
    "timeout",        # connection timeout: InjectedTimeoutError, no response
    "slow",           # correct response, with simulated transfer latency
    "truncate",       # body cut mid-transfer, size reduced, truncated=True
)

#: Statuses drawn for a ``server_error`` episode.
_SERVER_ERROR_STATUSES = (500, 503)

_FAULT_BODY = "<html><body><h1>Server Error</h1></body></html>"
_RATE_LIMIT_BODY = "<html><body><h1>Too Many Requests</h1></body></html>"


class InjectedTimeoutError(RuntimeError):
    """A scheduled connection timeout: the request produced no response.

    Raised by :class:`FaultyServer` and caught only by
    :class:`~repro.http.client.HttpClient`, which converts it into a
    synthetic ``TIMEOUT_STATUS`` response so crawler code keeps a single
    status-dispatch path.
    """

    def __init__(self, url: str, method: str) -> None:
        super().__init__(f"injected timeout: {method} {url}")
        self.url = url
        self.method = method


@dataclass(frozen=True)
class FaultSpec:
    """What to inject and how hard — the declarative half of a plan.

    ``rate`` is the probability that a request *starts* a fault episode;
    a ``server_error`` episode then extends over ``burst_length``
    consecutive requests to the same URL (real 5xx outages cluster).
    """

    rate: float = 0.0
    kinds: tuple[str, ...] = FAULT_KINDS
    burst_length: int = 2
    retry_after: float = 2.0          # seconds advertised by 429 responses
    slow_latency: float = 5.0         # simulated seconds added by "slow"
    truncate_fraction: float = 0.5    # fraction of the body that survives
    max_faults: int | None = None     # total cap across the plan's lifetime

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        if not 0.0 <= self.truncate_fraction < 1.0:
            raise ValueError("truncate_fraction must be in [0, 1)")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what :class:`FaultyServer` must do."""

    kind: str
    status: int = 0
    retry_after: float = 0.0
    latency: float = 0.0


class FaultPlan:
    """Seeded per-request fault schedule (the stateful half).

    One plan serves one environment; it consumes its RNG stream in
    request order, so identical request sequences see identical faults.
    ``reset()`` restores the initial state for a verbatim re-run.
    """

    def __init__(self, spec: FaultSpec | None = None, seed: int = 0) -> None:
        self.spec = spec if spec is not None else FaultSpec()
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        """Rewind to the initial state (fresh RNG stream, no bursts)."""
        self._rng = derive_rng(self.seed, "http-faults")
        self._bursts: dict[str, tuple[int, int]] = {}  # url -> (left, status)
        self.n_requests = 0
        self.n_faults = 0

    @property
    def enabled(self) -> bool:
        """False for the pass-through configuration (rate 0 / no kinds)."""
        return self.spec.rate > 0.0 and bool(self.spec.kinds)

    def _budget_left(self) -> bool:
        return self.spec.max_faults is None or self.n_faults < self.spec.max_faults

    def next_fault(self, url: str, method: str) -> Fault | None:
        """The fault for this request, or None for a clean pass-through.

        Burst continuations (an open 5xx episode on ``url``) consume no
        randomness, so they cannot desynchronise the stream.
        """
        del method  # faults are method-agnostic; kept for future shaping
        self.n_requests += 1
        if not self.enabled:
            return None
        burst = self._bursts.get(url)
        if burst is not None:
            left, status = burst
            if left <= 1:
                del self._bursts[url]
            else:
                self._bursts[url] = (left - 1, status)
            self.n_faults += 1
            return Fault(kind="server_error", status=status)
        if not self._budget_left():
            return None
        if self._rng.random() >= self.spec.rate:
            return None
        kind = self._rng.choice(self.spec.kinds)
        self.n_faults += 1
        if kind == "server_error":
            status = self._rng.choice(_SERVER_ERROR_STATUSES)
            if self.spec.burst_length > 1:
                self._bursts[url] = (self.spec.burst_length - 1, status)
            return Fault(kind=kind, status=status)
        if kind == "rate_limit":
            return Fault(kind=kind, status=429, retry_after=self.spec.retry_after)
        if kind == "timeout":
            return Fault(kind=kind)
        if kind == "slow":
            return Fault(kind=kind, latency=self.spec.slow_latency)
        return Fault(kind="truncate")


class FaultyServer:
    """A :class:`SimulatedServer` with a :class:`FaultPlan` in front.

    Implements the same ``get``/``head``/``invalidate``/``graph``
    surface as the clean server, so clients and environments cannot
    tell the difference — except through the responses themselves.
    """

    def __init__(self, inner: SimulatedServer, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    @property
    def graph(self):
        return self.inner.graph

    def invalidate(self, url: str) -> None:
        self.inner.invalidate(url)

    # -- faulted request surface ---------------------------------------

    def head(self, url: str) -> Response:
        return self._apply(url, "HEAD", lambda: self.inner.head(url))

    def get(self, url: str, blocklist_mime: bool = True) -> Response:
        return self._apply(
            url, "GET", lambda: self.inner.get(url, blocklist_mime=blocklist_mime)
        )

    def _apply(self, url: str, method: str, fetch) -> Response:
        fault = self.plan.next_fault(url, method)
        if fault is None:
            return fetch()
        if fault.kind == "timeout":
            raise InjectedTimeoutError(url, method)
        if fault.kind == "server_error":
            return Response(
                url=url, method=method, status=fault.status,
                size=len(_FAULT_BODY), body=_FAULT_BODY if method == "GET" else "",
                mime_type="text/html", fault=fault.kind,
            )
        if fault.kind == "rate_limit":
            retry_after = fault.retry_after
            header = str(int(retry_after)) if retry_after == int(retry_after) \
                else format(retry_after, "g")
            return Response(
                url=url, method=method, status=429,
                size=len(_RATE_LIMIT_BODY),
                body=_RATE_LIMIT_BODY if method == "GET" else "",
                mime_type="text/html", fault=fault.kind,
                headers={"Retry-After": header},
            )
        response = fetch()
        if fault.kind == "slow":
            response.latency = fault.latency
            response.fault = fault.kind
            return response
        # truncate: cut the body mid-transfer; the received size shrinks
        # accordingly (the volume cost model counts received bytes).
        fraction = self.plan.spec.truncate_fraction
        if response.body:
            response.body = response.body[: int(len(response.body) * fraction)]
        response.size = max(1, int(response.size * fraction))
        response.truncated = True
        response.fault = fault.kind
        return response
