"""Simulated HTTP layer.

Crawlers interact with websites exclusively through this layer: GET/HEAD
requests against a :class:`SimulatedServer` built over a
:class:`~repro.webgraph.model.WebsiteGraph`, with every request and byte
accounted in a :class:`CostLedger` and logged in a crawl trace.  The
paper's evaluation measures exactly these quantities (requests and data
volume; Sec. 4.4 excludes wall-clock time on purpose).
"""

from repro.http.messages import Response, parse_retry_after
from repro.http.ledger import CostLedger
from repro.http.server import SimulatedServer
from repro.http.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyServer,
    InjectedTimeoutError,
)
from repro.http.client import HttpClient, RetryPolicy
from repro.http.environment import CrawlEnvironment
from repro.http.cache import PageStore, ReplicatingFetcher

__all__ = [
    "Response",
    "parse_retry_after",
    "CostLedger",
    "SimulatedServer",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultyServer",
    "InjectedTimeoutError",
    "HttpClient",
    "RetryPolicy",
    "CrawlEnvironment",
    "PageStore",
    "ReplicatingFetcher",
]
