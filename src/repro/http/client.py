"""Crawler-facing HTTP client with cost accounting and retry/backoff.

Every GET/HEAD is recorded both in a :class:`CostLedger` (totals) and a
:class:`~repro.analysis.trace.CrawlTrace` (per-request log).  The client
refuses to fetch URLs outside the website boundary — crawler code must
apply the Sec. 2.2 same-site rule before scheduling a URL, and this
check turns a forgotten filter into a loud error instead of a silently
wrong experiment.

With a :class:`RetryPolicy` attached, transient failures (429, 5xx
bursts, timeouts, truncated bodies — see
``repro.http.messages.TRANSIENT_STATUSES``) are retried with capped
exponential backoff and seeded jitter; ``Retry-After`` headers are
honoured; every attempt is a full request in the ledger and trace, and
the simulated wait time is charged to ``CostLedger.wait_seconds``.
Without a policy (the default), behaviour is byte-identical to the
pre-retry client: one attempt per request, whatever the status.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.trace import CrawlRecord, CrawlTrace
from repro.http.faults import InjectedTimeoutError
from repro.http.ledger import CostLedger
from repro.http.messages import TIMEOUT_STATUS, Response, parse_retry_after
from repro.http.server import SimulatedServer
from repro.obs.events import (
    FaultInjected,
    FetchEvent,
    RequestAbandoned,
    RetryScheduled,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.utils.rng import derive_rng
from repro.webgraph.mime import is_target_mime
from repro.webgraph.model import same_site


class OffsiteRequestError(RuntimeError):
    """Raised when a crawler requests a URL outside the site boundary."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter (docs/architecture.md).

    ``max_attempts`` bounds attempts per request (first try included);
    ``total_budget`` bounds retries per crawl so a melting-down site
    cannot eat the whole request budget in back-offs.  The jittered
    delay for the retry after failed attempt *k* (1-based) is::

        min(max_delay, base_delay * multiplier**(k-1)) * (1 ± jitter)

    raised to the response's ``Retry-After`` when present and larger.
    Jitter comes from a ``derive_rng`` stream, so runs stay reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    total_budget: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay before the retry following failed ``attempt``."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def retry_wait(self, attempt: int, response: Response, rng: random.Random) -> float:
        """The wait before retrying ``response``: backoff, raised to any
        valid ``Retry-After`` the server advertised."""
        wait = self.backoff_delay(attempt, rng)
        retry_after = response.retry_after_seconds()
        if retry_after is not None:
            wait = max(wait, retry_after)
        return wait


def _failure_reason(response: Response) -> str:
    """Stable tag naming why a response counts as a transient failure."""
    if response.status == TIMEOUT_STATUS:
        return "timeout"
    if response.truncated:
        return "truncated"
    return f"status_{response.status}"


class HttpClient:
    """One crawler's connection to the simulated server."""

    def __init__(
        self,
        server: SimulatedServer,
        crawler_name: str = "",
        enforce_boundary: bool = True,
        target_mimes: frozenset[str] | None = None,
        observer: Observer | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.server = server
        self.ledger = CostLedger()
        self.trace = CrawlTrace(crawler=crawler_name, site=server.graph.name)
        self.enforce_boundary = enforce_boundary
        self.target_mimes = target_mimes
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.retry_policy = retry_policy
        self.retries_used = 0
        self._retry_rng: random.Random | None = (
            derive_rng(retry_policy.seed, "retry-jitter", crawler_name)
            if retry_policy is not None
            else None
        )

    # -- internals -----------------------------------------------------

    def _check_boundary(self, url: str) -> None:
        if self.enforce_boundary and not same_site(self.server.graph.root_url, url):
            raise OffsiteRequestError(
                f"crawler requested off-site URL: {url!r} "
                f"(site root {self.server.graph.root_url!r})"
            )

    def _record(self, response: Response) -> None:
        # robots.txt / sitemap.xml are crawl infrastructure, not data
        # targets, even though their MIME types (text/plain,
        # application/xml) appear in the paper's target list.
        well_known = response.url.rstrip("/").endswith(
            ("/robots.txt", "/sitemap.xml")
        )
        is_target = (
            response.method == "GET"
            and response.ok
            and not response.interrupted
            and not response.truncated
            and not well_known
            and is_target_mime(response.mime_root(), self.target_mimes)
        )
        self.ledger.record(response.method, response.size, is_target)
        if response.latency:
            self.ledger.record_wait(response.latency)
        self.trace.append(
            CrawlRecord(
                method=response.method,
                url=response.url,
                status=response.status,
                size=response.size,
                is_target=is_target,
            )
        )
        if self.observer.enabled:
            self.observer.on_event(
                FetchEvent(
                    ordinal=self.ledger.n_requests,
                    method=response.method,
                    url=response.url,
                    status=response.status,
                    size=response.size,
                    is_target=is_target,
                )
            )
            if response.fault is not None:
                self.observer.on_event(
                    FaultInjected(
                        ordinal=self.ledger.n_requests,
                        url=response.url,
                        fault=response.fault,
                        status=response.status,
                    )
                )

    def _fetch_once(self, method: str, url: str) -> Response:
        """One attempt: injected timeouts become synthetic responses so
        crawler code keeps a single status-dispatch path."""
        try:
            if method == "GET":
                response = self.server.get(url)
            else:
                response = self.server.head(url)
        except InjectedTimeoutError:
            response = Response(
                url=url, method=method, status=TIMEOUT_STATUS, size=0,
                fault="timeout",
            )
        self._record(response)
        return response

    def _retry_budget_left(self) -> bool:
        assert self.retry_policy is not None
        return self.retries_used < self.retry_policy.total_budget

    def _request(self, method: str, url: str) -> Response:
        self._check_boundary(url)
        response = self._fetch_once(method, url)
        policy = self.retry_policy
        if policy is None or not response.is_transient_error:
            return response
        attempt = 1
        while (
            response.is_transient_error
            and attempt < policy.max_attempts
            and self._retry_budget_left()
        ):
            wait = policy.retry_wait(attempt, response, self._retry_rng)
            self.retries_used += 1
            self.ledger.record_retry(wait)
            if self.observer.enabled:
                self.observer.on_event(
                    RetryScheduled(
                        ordinal=self.ledger.n_requests,
                        url=url,
                        attempt=attempt,
                        wait_seconds=wait,
                        reason=_failure_reason(response),
                    )
                )
            response = self._fetch_once(method, url)
            attempt += 1
        if response.is_transient_error:
            response.abandoned = True
            if self.observer.enabled:
                self.observer.on_event(
                    RequestAbandoned(
                        ordinal=self.ledger.n_requests,
                        url=url,
                        attempts=attempt,
                        reason=_failure_reason(response),
                    )
                )
        return response

    # -- public API ------------------------------------------------------

    def get(self, url: str) -> Response:
        """HTTP GET.  Redirects are *not* followed (Algorithm 4 handles 3xx)."""
        return self._request("GET", url)

    def head(self, url: str) -> Response:
        """HTTP HEAD: status and headers only, at small volume cost."""
        return self._request("HEAD", url)

    # -- cost helpers -----------------------------------------------------

    @property
    def n_requests(self) -> int:
        return self.ledger.n_requests

    @property
    def bytes_received(self) -> int:
        return self.ledger.bytes_total

    def budget_spent(self, cost_model: str = "requests") -> float:
        """Budget β under the chosen cost model (Sec. 2.2)."""
        if cost_model == "requests":
            return float(self.ledger.n_requests)
        if cost_model == "volume":
            return float(self.ledger.bytes_total)
        raise ValueError(f"unknown cost model: {cost_model}")

    # -- checkpointing (repro.checkpoint) --------------------------------

    def snapshot_state(self) -> dict:
        from repro.checkpoint.codec import encode_rng_state

        return {
            "ledger": self.ledger.snapshot_state(),
            "retries_used": self.retries_used,
            "retry_rng": (
                encode_rng_state(self._retry_rng)
                if self._retry_rng is not None
                else None
            ),
            "trace": {
                "records": [
                    [r.method, r.url, r.status, r.size, r.is_target]
                    for r in self.trace.records
                ],
                "stopped_early_at": self.trace.stopped_early_at,
            },
        }

    def restore_state(self, state: dict) -> None:
        from repro.checkpoint.codec import decode_rng_state

        self.ledger.restore_state(state["ledger"])
        self.retries_used = state["retries_used"]
        if state["retry_rng"] is not None:
            if self._retry_rng is None:
                raise ValueError(
                    "checkpoint carries retry-jitter RNG state but this "
                    "client has no retry policy"
                )
            self._retry_rng.setstate(decode_rng_state(state["retry_rng"]))
        trace = state["trace"]
        self.trace.records = [
            CrawlRecord(
                method=method, url=url, status=status, size=size,
                is_target=is_target,
            )
            for method, url, status, size, is_target in trace["records"]
        ]
        self.trace.stopped_early_at = trace["stopped_early_at"]
