"""Crawler-facing HTTP client with cost accounting.

Every GET/HEAD is recorded both in a :class:`CostLedger` (totals) and a
:class:`~repro.analysis.trace.CrawlTrace` (per-request log).  The client
refuses to fetch URLs outside the website boundary — crawler code must
apply the Sec. 2.2 same-site rule before scheduling a URL, and this
check turns a forgotten filter into a loud error instead of a silently
wrong experiment.
"""

from __future__ import annotations

from repro.analysis.trace import CrawlRecord, CrawlTrace
from repro.http.ledger import CostLedger
from repro.http.messages import Response
from repro.http.server import SimulatedServer
from repro.obs.events import FetchEvent
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.webgraph.mime import is_target_mime
from repro.webgraph.model import same_site


class OffsiteRequestError(RuntimeError):
    """Raised when a crawler requests a URL outside the site boundary."""


class HttpClient:
    """One crawler's connection to the simulated server."""

    def __init__(
        self,
        server: SimulatedServer,
        crawler_name: str = "",
        enforce_boundary: bool = True,
        target_mimes: frozenset[str] | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.server = server
        self.ledger = CostLedger()
        self.trace = CrawlTrace(crawler=crawler_name, site=server.graph.name)
        self.enforce_boundary = enforce_boundary
        self.target_mimes = target_mimes
        self.observer = observer if observer is not None else NULL_OBSERVER

    # -- internals -----------------------------------------------------

    def _check_boundary(self, url: str) -> None:
        if self.enforce_boundary and not same_site(self.server.graph.root_url, url):
            raise OffsiteRequestError(
                f"crawler requested off-site URL: {url!r} "
                f"(site root {self.server.graph.root_url!r})"
            )

    def _record(self, response: Response) -> None:
        # robots.txt / sitemap.xml are crawl infrastructure, not data
        # targets, even though their MIME types (text/plain,
        # application/xml) appear in the paper's target list.
        well_known = response.url.rstrip("/").endswith(
            ("/robots.txt", "/sitemap.xml")
        )
        is_target = (
            response.method == "GET"
            and response.ok
            and not response.interrupted
            and not well_known
            and is_target_mime(response.mime_root(), self.target_mimes)
        )
        self.ledger.record(response.method, response.size, is_target)
        self.trace.append(
            CrawlRecord(
                method=response.method,
                url=response.url,
                status=response.status,
                size=response.size,
                is_target=is_target,
            )
        )
        if self.observer.enabled:
            self.observer.on_event(
                FetchEvent(
                    ordinal=self.ledger.n_requests,
                    method=response.method,
                    url=response.url,
                    status=response.status,
                    size=response.size,
                    is_target=is_target,
                )
            )

    # -- public API ------------------------------------------------------

    def get(self, url: str) -> Response:
        """HTTP GET.  Redirects are *not* followed (Algorithm 4 handles 3xx)."""
        self._check_boundary(url)
        response = self.server.get(url)
        self._record(response)
        return response

    def head(self, url: str) -> Response:
        """HTTP HEAD: status and headers only, at small volume cost."""
        self._check_boundary(url)
        response = self.server.head(url)
        self._record(response)
        return response

    # -- cost helpers -----------------------------------------------------

    @property
    def n_requests(self) -> int:
        return self.ledger.n_requests

    @property
    def bytes_received(self) -> int:
        return self.ledger.bytes_total

    def budget_spent(self, cost_model: str = "requests") -> float:
        """Budget β under the chosen cost model (Sec. 2.2)."""
        if cost_model == "requests":
            return float(self.ledger.n_requests)
        if cost_model == "volume":
            return float(self.ledger.bytes_total)
        raise ValueError(f"unknown cost model: {cost_model}")
