"""HTTP message types exchanged between crawlers and the simulated server."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Size in bytes we account for a HEAD response (status line + headers).
HEAD_RESPONSE_SIZE = 280

#: Size accounted for a request we interrupt after the headers because the
#: MIME type is blocklisted (Sec. 3.4: "its retrieval is immediately
#: interrupted").
INTERRUPTED_RESPONSE_SIZE = 512


@dataclass
class Response:
    """Result of one HTTP request.

    ``size`` is the number of bytes the crawler received for this
    request, which is what the volume cost model ω counts.  For targets,
    the simulated server does not materialise multi-megabyte bodies;
    ``size`` carries the ground-truth content length and ``body`` is
    empty (content is generated on demand by :mod:`repro.sd` when an
    experiment needs to look inside a file).
    """

    url: str
    method: str
    status: int
    mime_type: str | None = None
    size: int = 0
    body: str = ""
    redirect_to: str | None = None
    headers: dict[str, str] = field(default_factory=dict)
    #: True when the transfer was cut off due to a blocklisted MIME type.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return 300 <= self.status < 400

    @property
    def is_error(self) -> bool:
        return self.status >= 400

    def mime_root(self) -> str | None:
        """MIME type without parameters (``text/html; charset=…`` → ``text/html``)."""
        if self.mime_type is None:
            return None
        return self.mime_type.split(";")[0].strip().lower()
