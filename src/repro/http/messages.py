"""HTTP message types exchanged between crawlers and the simulated server."""

from __future__ import annotations

import datetime as _datetime
import email.utils
from dataclasses import dataclass, field

#: Size in bytes we account for a HEAD response (status line + headers).
HEAD_RESPONSE_SIZE = 280

#: Size accounted for a request we interrupt after the headers because the
#: MIME type is blocklisted (Sec. 3.4: "its retrieval is immediately
#: interrupted").
INTERRUPTED_RESPONSE_SIZE = 512

#: Synthetic status for a connection timeout (no response bytes arrived).
#: 598 is the de-facto "network read timeout" convention; it keeps
#: timeouts on the ordinary ``is_error`` path without inventing a
#: parallel error channel.
TIMEOUT_STATUS = 598

#: Statuses a :class:`~repro.http.client.RetryPolicy` treats as
#: *transient*: retrying the same request may succeed.  Everything else
#: ``>= 400`` is *permanent* (404/410/403 do not heal by retrying).
TRANSIENT_STATUSES = frozenset({429, 500, 502, 503, 504, TIMEOUT_STATUS})


@dataclass
class Response:
    """Result of one HTTP request.

    ``size`` is the number of bytes the crawler received for this
    request, which is what the volume cost model ω counts.  For targets,
    the simulated server does not materialise multi-megabyte bodies;
    ``size`` carries the ground-truth content length and ``body`` is
    empty (content is generated on demand by :mod:`repro.sd` when an
    experiment needs to look inside a file).
    """

    url: str
    method: str
    status: int
    mime_type: str | None = None
    size: int = 0
    body: str = ""
    redirect_to: str | None = None
    headers: dict[str, str] = field(default_factory=dict)
    #: True when the transfer was cut off due to a blocklisted MIME type.
    interrupted: bool = False
    #: Injected-fault tag (``repro.http.faults`` kinds) or None on the
    #: clean path; drives the ``fault_injected`` observability event.
    fault: str | None = None
    #: True when the body was cut short mid-transfer (fault layer); a
    #: truncated payload is unreliable and therefore retryable.
    truncated: bool = False
    #: Simulated extra transfer seconds (slow-response fault); charged
    #: to the ledger's wait-time accounting, never to a real clock.
    latency: float = 0.0
    #: Set by the client when a retry policy exhausted its attempts on a
    #: transient failure — the crawler requeues or dead-letters the URL.
    abandoned: bool = False

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_redirect(self) -> bool:
        return 300 <= self.status < 400

    @property
    def is_error(self) -> bool:
        return self.status >= 400

    @property
    def is_transient_error(self) -> bool:
        """A failure that retrying may fix: 429/5xx-burst/timeout
        statuses, or a truncated body (Content-Length mismatch)."""
        return self.status in TRANSIENT_STATUSES or self.truncated

    @property
    def is_permanent_error(self) -> bool:
        """An error no retry heals (404, 410, 403, …) — dead-letter it."""
        return self.is_error and not self.is_transient_error

    def retry_after_seconds(self) -> float | None:
        """The parsed ``Retry-After`` header, if present and valid."""
        value = self.headers.get("Retry-After")
        if value is None:
            return None
        return parse_retry_after(value)

    def mime_root(self) -> str | None:
        """MIME type without parameters (``text/html; charset=…`` → ``text/html``)."""
        if self.mime_type is None:
            return None
        return self.mime_type.split(";")[0].strip().lower()


def parse_retry_after(
    value: str, now: _datetime.datetime | None = None
) -> float | None:
    """Parse a ``Retry-After`` header into seconds to wait.

    RFC 9110 allows two forms: *delta-seconds* (``"120"``) and an
    absolute *HTTP-date* (``"Wed, 21 Oct 2015 07:28:00 GMT"``).  The
    date form needs a reference instant to be turned into a delta;
    because library code must never read the wall clock (DET002), the
    caller passes ``now`` explicitly — with ``now=None`` a date-form
    header returns ``None`` and the caller falls back to its own
    backoff.  Garbage returns ``None``; negative waits clamp to 0.
    """
    text = value.strip()
    if not text:
        return None
    try:
        return max(0.0, float(int(text)))
    except ValueError:
        pass
    try:
        when = email.utils.parsedate_to_datetime(text)
    except (TypeError, ValueError):
        return None
    if when is None or now is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=_datetime.timezone.utc)
    if now.tzinfo is None:
        now = now.replace(tzinfo=_datetime.timezone.utc)
    return max(0.0, (when - now).total_seconds())
