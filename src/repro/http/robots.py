"""robots.txt parsing and politeness policy.

Crawling ethics are a recurring theme of the paper (1-second waits
between requests, respect for site owners).  This module implements the
subset of the Robots Exclusion Protocol a polite focused crawler needs:
``User-agent`` groups, ``Disallow``/``Allow`` prefix rules (longest
match wins, Google-style), ``Crawl-delay`` and ``Sitemap`` discovery.

Disallowed areas matter doubly for crawlers: besides etiquette, they
commonly fence off *spider traps* — unbounded calendar/search spaces
that would eat the crawl budget (the reason the paper calls DFS "rarely
used ... since it may fall into robot traps").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import urlsplit


@dataclass
class RobotsPolicy:
    """Parsed rules applying to one user agent."""

    disallow: list[str] = field(default_factory=list)
    allow: list[str] = field(default_factory=list)
    crawl_delay: float | None = None
    sitemaps: list[str] = field(default_factory=list)

    def allowed(self, url: str) -> bool:
        """Longest-prefix-match decision; empty Disallow allows all."""
        path = urlsplit(url).path or "/"
        query = urlsplit(url).query
        if query:
            path = f"{path}?{query}"
        best_allow = -1
        best_disallow = -1
        for rule in self.allow:
            if rule and path.startswith(rule):
                best_allow = max(best_allow, len(rule))
        for rule in self.disallow:
            if rule and path.startswith(rule):
                best_disallow = max(best_disallow, len(rule))
        return best_allow >= best_disallow

    # -- checkpointing (repro.checkpoint) ----------------------------

    def snapshot_state(self) -> dict:
        return {
            "disallow": list(self.disallow),
            "allow": list(self.allow),
            "crawl_delay": self.crawl_delay,
            "sitemaps": list(self.sitemaps),
        }

    def restore_state(self, state: dict) -> None:
        self.disallow = list(state["disallow"])
        self.allow = list(state["allow"])
        self.crawl_delay = state["crawl_delay"]
        self.sitemaps = list(state["sitemaps"])


def parse_robots_txt(text: str, user_agent: str = "*") -> RobotsPolicy:
    """Parse robots.txt, honouring the group matching ``user_agent`` (or
    the ``*`` group when no specific group matches)."""
    groups: dict[str, RobotsPolicy] = {}
    sitemaps: list[str] = []
    current_agents: list[str] = []
    last_was_agent = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line or ":" not in line:
            continue
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if key == "user-agent":
            if not last_was_agent:
                current_agents = []
            current_agents.append(value.lower())
            groups.setdefault(value.lower(), RobotsPolicy())
            last_was_agent = True
            continue
        last_was_agent = False
        if key == "sitemap":
            sitemaps.append(value)
            continue
        for agent in current_agents:
            policy = groups[agent]
            if key == "disallow" and value:
                policy.disallow.append(value)
            elif key == "allow" and value:
                policy.allow.append(value)
            elif key == "crawl-delay":
                try:
                    policy.crawl_delay = float(value)
                except ValueError:
                    pass
    chosen = groups.get(user_agent.lower()) or groups.get("*") or RobotsPolicy()
    chosen.sitemaps = sitemaps
    return chosen


def fetch_robots_policy(client, root_url: str) -> RobotsPolicy:
    """Fetch and parse ``<root>/robots.txt`` through a crawl client.

    Costs one GET (recorded like any request); a missing robots.txt
    yields an allow-everything policy.
    """
    base = root_url.rstrip("/")
    response = client.get(f"{base}/robots.txt")
    if response.ok and response.body:
        return parse_robots_txt(response.body)
    return RobotsPolicy()


def parse_sitemap(xml_text: str) -> list[str]:
    """Extract ``<loc>`` URLs from a (urlset) sitemap document."""
    urls: list[str] = []
    text = xml_text
    while True:
        start = text.find("<loc>")
        if start == -1:
            break
        end = text.find("</loc>", start)
        if end == -1:
            break
        urls.append(text[start + len("<loc>") : end].strip())
        text = text[end + len("</loc>") :]
    return urls
