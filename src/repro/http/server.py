"""Simulated HTTP server over a website graph.

Serves GET and HEAD for every URL of the site: HTML pages are rendered
to real HTML (lazily, cached), targets return their MIME type and
content length, error URLs return their 4xx/5xx status, redirects
return 301 + ``Location``.  Unknown in-site URLs 404.  The server is
stateless with respect to crawlers, so many crawlers can share one
server (and its render cache) for fair comparisons, exactly like the
paper's local-replication evaluation mode (Sec. 4.4).
"""

from __future__ import annotations

from repro.html.render import render_page
from repro.http.messages import HEAD_RESPONSE_SIZE, INTERRUPTED_RESPONSE_SIZE, Response
from repro.webgraph.mime import is_blocklisted_mime
from repro.webgraph.model import PageKind, WebsiteGraph

_ERROR_BODY = "<html><body><h1>Error</h1></body></html>"


class SimulatedServer:
    """Answers HTTP requests for one website."""

    def __init__(self, graph: WebsiteGraph) -> None:
        self.graph = graph
        self._render_cache: dict[str, str] = {}

    # -- internals -----------------------------------------------------

    def invalidate(self, url: str) -> None:
        """Drop the cached rendering of ``url`` (page content changed)."""
        self._render_cache.pop(url, None)

    def _render(self, url: str) -> str:
        body = self._render_cache.get(url)
        if body is None:
            body = render_page(self.graph.page(url))
            self._render_cache[url] = body
        return body

    # -- public API ------------------------------------------------------

    def head(self, url: str) -> Response:
        """HEAD request: status + headers only, small response size."""
        page = self.graph.get(url)
        if page is None:
            return Response(url=url, method="HEAD", status=404, size=HEAD_RESPONSE_SIZE)
        headers: dict[str, str] = {}
        mime = page.mime_type
        if page.kind is PageKind.HTML:
            mime = "text/html; charset=utf-8"
        if mime is not None:
            headers["Content-Type"] = mime
        headers["Content-Length"] = str(page.size)
        if page.redirect_to is not None:
            headers["Location"] = page.redirect_to
        return Response(
            url=url,
            method="HEAD",
            status=page.status,
            mime_type=mime,
            size=HEAD_RESPONSE_SIZE,
            redirect_to=page.redirect_to,
            headers=headers,
        )

    def _well_known(self, url: str) -> Response | None:
        """Serve robots.txt / sitemap.xml when the site provides them."""
        base = self.graph.root_url.rstrip("/")
        if url == f"{base}/robots.txt" and self.graph.robots_txt is not None:
            body = self.graph.robots_txt
            return Response(url=url, method="GET", status=200,
                            mime_type="text/plain", size=len(body), body=body)
        if url == f"{base}/sitemap.xml" and self.graph.sitemap_urls:
            locs = "\n".join(
                f"  <url><loc>{u}</loc></url>" for u in self.graph.sitemap_urls
            )
            body = f'<?xml version="1.0"?>\n<urlset>\n{locs}\n</urlset>\n'
            return Response(url=url, method="GET", status=200,
                            mime_type="application/xml", size=len(body), body=body)
        return None

    def get(self, url: str, blocklist_mime: bool = True) -> Response:
        """GET request.

        When ``blocklist_mime`` is set, transfers of multimedia MIME
        types are interrupted right after the headers (the crawler's
        MIME blocklist, Sec. 3.4) so only a small size is accounted.
        """
        well_known = self._well_known(url)
        if well_known is not None:
            return well_known
        page = self.graph.get(url)
        if page is None:
            return Response(
                url=url, method="GET", status=404, size=len(_ERROR_BODY),
                body=_ERROR_BODY, mime_type="text/html",
            )
        if page.redirect_to is not None:
            return Response(
                url=url,
                method="GET",
                status=page.status,
                size=page.size,
                redirect_to=page.redirect_to,
                headers={"Location": page.redirect_to},
            )
        if page.kind is PageKind.ERROR:
            return Response(
                url=url, method="GET", status=page.status, size=page.size,
                body=_ERROR_BODY, mime_type="text/html",
            )
        if page.kind is PageKind.HTML:
            body = self._render(url)
            return Response(
                url=url,
                method="GET",
                status=200,
                mime_type="text/html; charset=utf-8",
                size=len(body),
                body=body,
            )
        # Target or other binary resource.
        if blocklist_mime and is_blocklisted_mime(page.mime_type):
            return Response(
                url=url,
                method="GET",
                status=200,
                mime_type=page.mime_type,
                size=INTERRUPTED_RESPONSE_SIZE,
                interrupted=True,
            )
        return Response(
            url=url,
            method="GET",
            status=200,
            mime_type=page.mime_type,
            size=page.size,
        )
