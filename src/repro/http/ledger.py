"""Cost accounting for a crawl.

The paper uses two cost functions ω (Sec. 2.2): request count (each
GET or HEAD costs 1) and received data volume.  The ledger tracks both
simultaneously, split into target and non-target volume (needed for the
Table 3 metric), plus an estimate of wall-clock time under a politeness
delay — the paper's Sec. 4.4 derives times from requests + bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostLedger:
    """Mutable request/volume counters for one crawler run."""

    n_get: int = 0
    n_head: int = 0
    bytes_total: int = 0
    bytes_target: int = 0
    bytes_non_target: int = 0
    #: retries issued by the client's RetryPolicy (each retry is also a
    #: full request above — this counts the *extra* attempts).
    n_retries: int = 0
    #: simulated seconds spent waiting: retry backoff, honoured
    #: Retry-After values, and slow-response latency.  Never wall-clock.
    wait_seconds: float = 0.0

    @property
    def n_requests(self) -> int:
        """Total requests — the paper's request cost ω (GET and HEAD)."""
        return self.n_get + self.n_head

    def record(self, method: str, size: int, is_target: bool) -> None:
        if method == "GET":
            self.n_get += 1
        elif method == "HEAD":
            self.n_head += 1
        else:
            raise ValueError(f"unknown method: {method}")
        self.bytes_total += size
        if is_target:
            self.bytes_target += size
        else:
            self.bytes_non_target += size

    def record_retry(self, wait_seconds: float) -> None:
        """Charge one scheduled retry and its backoff wait."""
        self.n_retries += 1
        self.record_wait(wait_seconds)

    def record_wait(self, seconds: float) -> None:
        """Charge simulated wait time (backoff, Retry-After, slow faults)."""
        if seconds < 0:
            raise ValueError("wait time cannot be negative")
        self.wait_seconds += seconds

    def estimated_seconds(
        self, politeness_delay: float = 1.0, bandwidth_bps: float = 10e6
    ) -> float:
        """Estimated crawl duration: politeness waits + transfer time +
        simulated retry/latency waits.

        Crawling ethics require ~1 s between successive requests; volume
        transfers at ``bandwidth_bps`` bytes/second.
        """
        return (
            self.n_requests * politeness_delay
            + self.bytes_total / bandwidth_bps
            + self.wait_seconds
        )

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Fold ``other`` into this ledger (campaign shard aggregation).

        The fold is associative and commutative with the fresh ledger as
        identity, so per-shard ledgers merge losslessly in any grouping
        — the property the campaign engine's digest contract rests on
        (tests/test_http_ledger.py asserts it).  Returns ``self`` so
        folds chain: ``total.merge(a).merge(b)``.
        """
        self.n_get += other.n_get
        self.n_head += other.n_head
        self.bytes_total += other.bytes_total
        self.bytes_target += other.bytes_target
        self.bytes_non_target += other.bytes_non_target
        self.n_retries += other.n_retries
        self.wait_seconds += other.wait_seconds
        return self

    def snapshot(self) -> "CostLedger":
        return CostLedger(
            n_get=self.n_get,
            n_head=self.n_head,
            bytes_total=self.bytes_total,
            bytes_target=self.bytes_target,
            bytes_non_target=self.bytes_non_target,
            n_retries=self.n_retries,
            wait_seconds=self.wait_seconds,
        )

    # -- checkpointing (repro.checkpoint) --------------------------------
    # (``snapshot`` above predates the protocol and means "defensive
    # copy" — hence the distinct ``snapshot_state`` name.)

    def snapshot_state(self) -> dict:
        return {
            "n_get": self.n_get,
            "n_head": self.n_head,
            "bytes_total": self.bytes_total,
            "bytes_target": self.bytes_target,
            "bytes_non_target": self.bytes_non_target,
            "n_retries": self.n_retries,
            "wait_seconds": self.wait_seconds,
        }

    def restore_state(self, state: dict) -> None:
        self.n_get = state["n_get"]
        self.n_head = state["n_head"]
        self.bytes_total = state["bytes_total"]
        self.bytes_target = state["bytes_target"]
        self.bytes_non_target = state["bytes_non_target"]
        self.n_retries = state["n_retries"]
        self.wait_seconds = state["wait_seconds"]
