"""WARC-style archival of crawl responses.

Web-archiving crawlers (Heritrix, the Internet Archive stack the paper
cites) persist fetched resources in WARC files.  This module implements
a simplified, self-contained WARC/1.1-like writer/reader so a crawl of
the simulated web can be exported as an archive and re-read later —
complementing the SQLite :class:`~repro.http.cache.PageStore` with a
portable, append-only format.

Records follow the WARC layout (``WARC/1.1`` header, named fields,
blank line, payload, two blank lines); only ``response`` records are
emitted, with the subset of fields a reader needs.  Payloads are stored
verbatim (no HTTP envelope) with ``Content-Length`` integrity checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.http.messages import Response

_HEADER = "WARC/1.1"


@dataclass(frozen=True)
class WarcRecord:
    """One archived response."""

    url: str
    status: int
    mime_type: str | None
    payload: str
    record_id: str

    def digest(self) -> str:
        return hashlib.sha1(self.payload.encode("utf-8")).hexdigest()


class WarcWriter:
    """Append-only writer of simplified WARC records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = self.path.open("a", encoding="utf-8", newline="\n")
        self._count = 0

    def __enter__(self) -> "WarcWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self._handle.close()

    def write_response(self, response: Response) -> str:
        """Archive one response; returns the record id."""
        self._count += 1
        payload = response.body or ""
        record_id = f"<urn:repro:{self.path.stem}:{self._count}>"
        digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        fields = [
            ("WARC-Type", "response"),
            ("WARC-Record-ID", record_id),
            ("WARC-Target-URI", response.url),
            ("WARC-Payload-Digest", f"sha1:{digest}"),
            ("X-HTTP-Status", str(response.status)),
            ("Content-Type", response.mime_type or "application/octet-stream"),
            ("Content-Length", str(len(payload.encode("utf-8")))),
        ]
        self._handle.write(_HEADER + "\n")
        for key, value in fields:
            self._handle.write(f"{key}: {value}\n")
        self._handle.write("\n")
        self._handle.write(payload)
        self._handle.write("\n\n")
        return record_id


def read_warc(path: str | Path) -> Iterator[WarcRecord]:
    """Stream records from a simplified WARC file, verifying digests."""
    text = Path(path).read_text(encoding="utf-8")
    position = 0
    while True:
        start = text.find(_HEADER, position)
        if start == -1:
            return
        header_end = text.find("\n\n", start)
        if header_end == -1:
            raise ValueError("truncated WARC header")
        headers: dict[str, str] = {}
        for line in text[start:header_end].splitlines()[1:]:
            key, _, value = line.partition(":")
            headers[key.strip()] = value.strip()
        length = int(headers.get("Content-Length", "0"))
        payload_start = header_end + 2
        payload_bytes = text[payload_start:].encode("utf-8")[:length]
        payload = payload_bytes.decode("utf-8")
        record = WarcRecord(
            url=headers.get("WARC-Target-URI", ""),
            status=int(headers.get("X-HTTP-Status", "0")),
            mime_type=headers.get("Content-Type"),
            payload=payload,
            record_id=headers.get("WARC-Record-ID", ""),
        )
        declared = headers.get("WARC-Payload-Digest", "")
        if declared and declared != f"sha1:{record.digest()}":
            raise ValueError(f"digest mismatch for {record.url}")
        yield record
        position = payload_start + len(payload)


def archive_crawl(
    server,
    urls: list[str],
    path: str | Path,
) -> int:
    """Fetch ``urls`` from a simulated server and archive the responses.

    Returns the number of records written.  Used to export a crawl (or a
    full replication) as a portable artefact.
    """
    count = 0
    with WarcWriter(path) as writer:
        for url in urls:
            writer.write_response(server.get(url))
            count += 1
    return count
