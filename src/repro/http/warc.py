"""WARC-style archival of crawl responses.

Web-archiving crawlers (Heritrix, the Internet Archive stack the paper
cites) persist fetched resources in WARC files.  This module implements
a simplified, self-contained WARC/1.1-like writer/reader so a crawl of
the simulated web can be exported as an archive and re-read later —
complementing the SQLite :class:`~repro.http.cache.PageStore` with a
portable, append-only format.

Records follow the WARC layout (``WARC/1.1`` header, named fields,
blank line, payload, two blank lines); only ``response`` records are
emitted, with the subset of fields a reader needs.  Payloads are stored
verbatim (no HTTP envelope) with ``Content-Length`` integrity checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.http.messages import Response

_HEADER = "WARC/1.1"


@dataclass(frozen=True)
class WarcRecord:
    """One archived response."""

    url: str
    status: int
    mime_type: str | None
    payload: str
    record_id: str

    def digest(self) -> str:
        return hashlib.sha1(self.payload.encode("utf-8")).hexdigest()


class WarcWriter:
    """Append-only writer of simplified WARC records."""

    def __init__(self, path: str | Path, resume: bool = False) -> None:
        self.path = Path(path)
        self._count = 0
        if resume and self.path.exists() and self.path.stat().st_size > 0:
            # Continue record numbering where the interrupted run left
            # off, so resumed archives never reuse a record id.
            self._count = sum(1 for _ in read_warc(self.path))
        self._handle = self.path.open("a", encoding="utf-8", newline="\n")

    @property
    def n_records(self) -> int:
        return self._count

    def __enter__(self) -> "WarcWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self._handle.close()

    def write_response(self, response: Response) -> str:
        """Archive one response; returns the record id."""
        self._count += 1
        payload = response.body or ""
        record_id = f"<urn:repro:{self.path.stem}:{self._count}>"
        digest = hashlib.sha1(payload.encode("utf-8")).hexdigest()
        fields = [
            ("WARC-Type", "response"),
            ("WARC-Record-ID", record_id),
            ("WARC-Target-URI", response.url),
            ("WARC-Payload-Digest", f"sha1:{digest}"),
            ("X-HTTP-Status", str(response.status)),
            ("Content-Type", response.mime_type or "application/octet-stream"),
            ("Content-Length", str(len(payload.encode("utf-8")))),
        ]
        self._handle.write(_HEADER + "\n")
        for key, value in fields:
            self._handle.write(f"{key}: {value}\n")
        self._handle.write("\n")
        self._handle.write(payload)
        self._handle.write("\n\n")
        return record_id

    # -- checkpointing (repro.checkpoint) ----------------------------

    def snapshot_state(self) -> dict:
        return {"n_records": self._count}

    def restore_state(self, state: dict) -> None:
        self._count = state["n_records"]


def truncate_warc(path: str | Path, n_records: int) -> None:
    """Rewind a WARC file to its first ``n_records`` records
    (resume-from-checkpoint: drop records written after the snapshot).

    Fails loudly if the file holds fewer than ``n_records`` records —
    that means the checkpoint and the archive drifted apart.
    """
    path = Path(path)
    records = list(read_warc(path))
    if len(records) < n_records:
        raise ValueError(
            f"cannot rewind {path} to {n_records} records: "
            f"only {len(records)} present"
        )
    with path.open("w", encoding="utf-8", newline="\n") as handle:
        writer_count = 0
        for record in records[:n_records]:
            writer_count += 1
            payload = record.payload
            fields = [
                ("WARC-Type", "response"),
                ("WARC-Record-ID", record.record_id),
                ("WARC-Target-URI", record.url),
                ("WARC-Payload-Digest", f"sha1:{record.digest()}"),
                ("X-HTTP-Status", str(record.status)),
                ("Content-Type", record.mime_type or "application/octet-stream"),
                ("Content-Length", str(len(payload.encode("utf-8")))),
            ]
            handle.write(_HEADER + "\n")
            for key, value in fields:
                handle.write(f"{key}: {value}\n")
            handle.write("\n")
            handle.write(payload)
            handle.write("\n\n")


def read_warc(path: str | Path) -> Iterator[WarcRecord]:
    """Stream records from a simplified WARC file, verifying digests."""
    text = Path(path).read_text(encoding="utf-8")
    position = 0
    while True:
        start = text.find(_HEADER, position)
        if start == -1:
            return
        header_end = text.find("\n\n", start)
        if header_end == -1:
            raise ValueError("truncated WARC header")
        headers: dict[str, str] = {}
        for line in text[start:header_end].splitlines()[1:]:
            key, _, value = line.partition(":")
            headers[key.strip()] = value.strip()
        length = int(headers.get("Content-Length", "0"))
        payload_start = header_end + 2
        payload_bytes = text[payload_start:].encode("utf-8")[:length]
        payload = payload_bytes.decode("utf-8")
        record = WarcRecord(
            url=headers.get("WARC-Target-URI", ""),
            status=int(headers.get("X-HTTP-Status", "0")),
            mime_type=headers.get("Content-Type"),
            payload=payload,
            record_id=headers.get("WARC-Record-ID", ""),
        )
        declared = headers.get("WARC-Payload-Digest", "")
        if declared and declared != f"sha1:{record.digest()}":
            raise ValueError(f"digest mismatch for {record.url}")
        yield record
        position = payload_start + len(payload)


def archive_crawl(
    server,
    urls: list[str],
    path: str | Path,
) -> int:
    """Fetch ``urls`` from a simulated server and archive the responses.

    Returns the number of records written.  Used to export a crawl (or a
    full replication) as a portable artefact.
    """
    count = 0
    with WarcWriter(path) as writer:
        for url in urls:
            writer.write_response(server.get(url))
            count += 1
    return count
