"""Local replication database (the paper's evaluation infrastructure).

Sec. 4.4: to evaluate seven crawlers under many hyper-parameter settings
without re-crawling live websites, every crawler "first checks if the
resource is already stored in a local database.  If so, we use it;
otherwise, we fetch it via HTTP GET and the URL, HTTP status, headers,
and response body are stored".  The artifact kit exposes three modes:
*local* (serve from the database only), *semi-online* (database with
fetch-on-miss) and *online-to-local* (naively replicate a site first).

:class:`PageStore` is a SQLite-backed store of responses (bodies are
zlib-compressed); :class:`ReplicatingFetcher` layers the three modes on
top of any live source (here: the simulated server).
"""

from __future__ import annotations

import sqlite3
import zlib
from pathlib import Path

from repro.http.messages import Response
from repro.http.server import SimulatedServer

_SCHEMA = """
CREATE TABLE IF NOT EXISTS responses (
    url          TEXT NOT NULL,
    method       TEXT NOT NULL,
    status       INTEGER NOT NULL,
    mime_type    TEXT,
    size         INTEGER NOT NULL,
    redirect_to  TEXT,
    body         BLOB,
    PRIMARY KEY (url, method)
);
"""


class PageStore:
    """SQLite store of HTTP responses, keyed by (url, method)."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path))
        self._conn.execute("PRAGMA journal_mode=WAL;")
        self._conn.execute(_SCHEMA)
        self._conn.commit()

    # -- context manager --------------------------------------------------

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self._conn.close()

    # -- CRUD ----------------------------------------------------------------

    def put(self, response: Response) -> None:
        body_blob = zlib.compress(response.body.encode("utf-8")) if response.body else None
        self._conn.execute(
            "INSERT OR REPLACE INTO responses "
            "(url, method, status, mime_type, size, redirect_to, body) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                response.url,
                response.method,
                response.status,
                response.mime_type,
                response.size,
                response.redirect_to,
                body_blob,
            ),
        )
        self._conn.commit()

    def get(self, url: str, method: str = "GET") -> Response | None:
        row = self._conn.execute(
            "SELECT url, method, status, mime_type, size, redirect_to, body "
            "FROM responses WHERE url = ? AND method = ?",
            (url, method),
        ).fetchone()
        if row is None:
            return None
        body = zlib.decompress(row[6]).decode("utf-8") if row[6] is not None else ""
        return Response(
            url=row[0],
            method=row[1],
            status=row[2],
            mime_type=row[3],
            size=row[4],
            body=body,
            redirect_to=row[5],
        )

    def __contains__(self, url: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM responses WHERE url = ? LIMIT 1", (url,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(DISTINCT url) FROM responses"
        ).fetchone()
        return int(count)

    def urls(self) -> list[str]:
        rows = self._conn.execute("SELECT DISTINCT url FROM responses").fetchall()
        return [r[0] for r in rows]


class ReplicatingFetcher:
    """Fetch-through cache implementing the artifact kit's three modes."""

    def __init__(
        self,
        source: SimulatedServer,
        store: PageStore,
        mode: str = "semi-online",
    ) -> None:
        if mode not in ("local", "semi-online"):
            raise ValueError("mode must be 'local' or 'semi-online'")
        self.source = source
        self.store = store
        self.mode = mode
        self.n_live_fetches = 0

    def get(self, url: str) -> Response:
        cached = self.store.get(url, "GET")
        if cached is not None:
            return cached
        if self.mode == "local":
            # A URL absent from a full local replication does not exist.
            return Response(url=url, method="GET", status=404, size=0)
        response = self.source.get(url)
        self.n_live_fetches += 1
        self.store.put(response)
        return response

    def head(self, url: str) -> Response:
        cached = self.store.get(url, "HEAD")
        if cached is not None:
            return cached
        if self.mode == "local":
            return Response(url=url, method="HEAD", status=404, size=0)
        response = self.source.head(url)
        self.n_live_fetches += 1
        self.store.put(response)
        return response


def replicate_site(server: SimulatedServer, store: PageStore) -> int:
    """Online-to-local mode: naively replicate every URL of the site.

    Returns the number of responses stored.
    """
    count = 0
    for url in list(server.graph.urls()):
        store.put(server.get(url))
        store.put(server.head(url))
        count += 1
    return count
